"""Delta-debugging minimizer for failing (corpus, query) pairs.

Given a divergence predicate, greedily shrink along three axes until a
fixpoint:

1. **documents** — drop corpus documents one at a time (a repro over
   one generated article beats one over nine);
2. **conjuncts** — drop residual conjuncts of the top-level ⋀;
3. **path components** — drop components of the path predicate,
   recomputing the query head from the variables that survive.

A candidate shrink is *accepted* only when the divergence predicate
still holds on it — candidates that make the query unsafe are rejected
naturally, because both backends then refuse it identically (see the
``rejected`` error label in :mod:`repro.diffcheck.harness`) and the
divergence disappears.

The predicate is a parameter (not hard-wired to the harness) so the
shrinking strategy is unit-testable against synthetic bugs.
"""

from __future__ import annotations

from repro.calculus.formulas import And, PathAtom, Query
from repro.calculus.terms import PathTerm
from repro.diffcheck.generator import CorpusSpec


def minimize(spec: CorpusSpec, query: Query, diverges,
             metrics=None) -> tuple[CorpusSpec, Query]:
    """Shrink ``(spec, query)`` while ``diverges(spec, query)`` holds.

    ``diverges`` must be deterministic; the pair returned is 1-minimal
    along the three axes (no single document, conjunct or path
    component can be removed without losing the divergence).
    """
    if not diverges(spec, query):
        raise ValueError(
            "minimize() needs a failing input: the divergence predicate "
            "is already false on the given (corpus, query) pair")
    changed = True
    while changed:
        changed = False
        spec, shrunk = _shrink_corpus(spec, query, diverges, metrics)
        changed |= shrunk
        query, shrunk = _shrink_conjuncts(spec, query, diverges, metrics)
        changed |= shrunk
        query, shrunk = _shrink_components(spec, query, diverges, metrics)
        changed |= shrunk
    if metrics is not None:
        metrics.inc("diffcheck.minimized")
    return spec, query


def _probe(spec, query, diverges, metrics) -> bool:
    if metrics is not None:
        metrics.inc("diffcheck.minimizer_probes")
    try:
        return bool(diverges(spec, query))
    except Exception:
        # a shrink that breaks the checker itself is never accepted
        return False


def _shrink_corpus(spec: CorpusSpec, query, diverges,
                   metrics) -> tuple[CorpusSpec, bool]:
    shrunk = False
    keep = list(spec.indices())
    position = 0
    while len(keep) > 1 and position < len(keep):
        candidate_keep = keep[:position] + keep[position + 1:]
        candidate = CorpusSpec(count=spec.count, seed=spec.seed,
                               keep=tuple(candidate_keep))
        if _probe(candidate, query, diverges, metrics):
            keep = candidate_keep
            spec = candidate
            shrunk = True
        else:
            position += 1
    return spec, shrunk


def _conjunct_list(formula) -> list:
    if isinstance(formula, And):
        return list(formula.conjuncts)
    return [formula]


def _rebuild(query: Query, conjuncts: list) -> Query | None:
    """The query over a new conjunct list, with its head reduced to the
    variables the remaining formula can still bind."""
    if not conjuncts:
        return None
    formula = conjuncts[0] if len(conjuncts) == 1 else And(*conjuncts)
    path_vars: list = []
    for conjunct in conjuncts:
        if isinstance(conjunct, PathAtom):
            path_vars.extend(conjunct.path.variables())
    head = [variable for variable in query.head
            if variable in path_vars
            or variable in formula.free_variables()]
    if not head:
        return None
    return Query(head, formula)


def _shrink_conjuncts(spec, query: Query, diverges,
                      metrics) -> tuple[Query, bool]:
    shrunk = False
    conjuncts = _conjunct_list(query.formula)
    position = 0
    while len(conjuncts) > 1 and position < len(conjuncts):
        candidate = _rebuild(
            query, conjuncts[:position] + conjuncts[position + 1:])
        if candidate is not None and _probe(spec, candidate, diverges,
                                            metrics):
            conjuncts = _conjunct_list(candidate.formula)
            query = candidate
            shrunk = True
        else:
            position += 1
    return query, shrunk


def _shrink_components(spec, query: Query, diverges,
                       metrics) -> tuple[Query, bool]:
    shrunk = False
    position = 0
    while True:
        conjuncts = _conjunct_list(query.formula)
        atom_index = next(
            (i for i, c in enumerate(conjuncts)
             if isinstance(c, PathAtom)), None)
        if atom_index is None:
            return query, shrunk
        atom = conjuncts[atom_index]
        components = list(atom.path.components)
        if len(components) <= 1 or position >= len(components):
            return query, shrunk
        slimmer = PathAtom(atom.root, PathTerm(
            components[:position] + components[position + 1:]))
        candidate = _rebuild(
            query,
            conjuncts[:atom_index] + [slimmer]
            + conjuncts[atom_index + 1:])
        if candidate is not None and _probe(spec, candidate, diverges,
                                            metrics):
            query = candidate
            shrunk = True
        else:
            position += 1
