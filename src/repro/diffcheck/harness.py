"""Run one query through every backend configuration and compare.

The calculus interpreter is the reference semantics; the algebra
backend is exercised in all optimizer configurations:

* ``unoptimized`` — the raw Section-5.4 compilation;
* ``optimized``   — index rewrite + selection pushdown, no factoring;
* ``factored``    — the full pipeline including the shared-prefix DAG;
* ``structural``  — the full pipeline plus the structural-index
  rewrite (path-variable fan-outs replaced by pre/post interval range
  scans over :mod:`repro.structindex`), executed against a store whose
  structural index is built — this falsifies the scan/join operators,
  the encoding's completeness flags and the index's freshness hooks
  against the calculus reference;
* ``cached``      — the factored plan executed a second time on a
  fresh context fork, i.e. exactly what a prepared/plan-cached query
  re-execution does (this is the configuration that would catch
  cross-run state leaks such as a stale ``SharedOp`` memo);
* ``costed``      — the full pipeline plus the statistics-driven cost
  stage (:mod:`repro.stats`): union branches reordered by estimated
  cost, provably-empty branches pruned statically, unprofitable index
  filters demoted — all under ``verify="raise"``, so a miscosted
  rewrite surfaces as a ``PlanVerificationError`` divergence;
* ``sql``         — the ``structural`` plan hybridized by the
  relational backend (:mod:`repro.sqlbackend`): the maximal
  relational prefix runs as emitted SQL over the store's SQLite
  shredding, the remainder as plan operators over the hydrated rows.
  A *compile-time* refusal or a *runtime guard*
  (:class:`~repro.errors.SQLUnsupportedError`) falls back to plan
  execution — exactly the engine's serving behavior — so refusals
  are exercised but never read as divergences by themselves.

Two outcomes agree when they produce equal result sets, or fail the
same way — wrong-branch navigation is *false, never an error* in both
semantics, so a genuine error must be reproduced by both sides to
count as agreement.  A query that is not range-restricted is refused
by the calculus at evaluation time (:class:`SafetyError`) and by the
compiler at compile time (:class:`CompilationError`); both label the
outcome ``rejected``, so the stage difference never reads as a
divergence (the minimizer routinely produces such intermediates).
:class:`~repro.errors.SQLBackendError` and raw driver errors
(``sqlite3.Error``) coarsen to ``rejected`` too: the *category* of a
relational refusal is stage-independent, and the minimizer must not
chase the exact driver message while shrinking a case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calculus.evaluator import evaluate_query
from repro.calculus.formulas import Query
from repro.diffcheck.generator import CorpusSpec
from repro.errors import CompilationError, SafetyError
from repro.oodb.values import SetValue

#: The algebra-side configurations, in comparison order.
ALGEBRA_CONFIGS = ("unoptimized", "optimized", "factored", "structural",
                   "cached", "costed", "sql")

#: The reference configuration name.
REFERENCE = "calculus"


def _error_label(exc: Exception) -> str:
    """Coarse error category; static rejection is stage-independent.

    Relational-backend refusals and raw SQLite driver errors coarsen
    the same way: what matters differentially is *that* the backend
    refused, not the driver's message text."""
    import sqlite3

    from repro.errors import SQLBackendError
    if isinstance(exc, (SafetyError, CompilationError)):
        return "rejected"
    if isinstance(exc, (SQLBackendError, sqlite3.Error)):
        return "rejected"
    return type(exc).__name__


@dataclass
class Outcome:
    """What one configuration produced: a result set or an error."""

    result: SetValue | None = None
    error: str | None = None

    def agrees_with(self, other: "Outcome") -> bool:
        if (self.error is None) != (other.error is None):
            return False
        if self.error is not None:
            return self.error == other.error
        return self.result == other.result

    def render(self, limit: int = 6) -> str:
        if self.error is not None:
            return f"error<{self.error}>"
        rows = list(self.result)
        shown = ", ".join(repr(r) for r in rows[:limit])
        suffix = ", ..." if len(rows) > limit else ""
        return f"{len(rows)} rows {{{shown}{suffix}}}"


@dataclass
class Comparison:
    """The outcome of one differential trial."""

    corpus: CorpusSpec
    query: Query
    outcomes: dict

    @property
    def reference(self) -> Outcome:
        return self.outcomes[REFERENCE]

    def divergent_configs(self) -> list[str]:
        reference = self.reference
        return [name for name in ALGEBRA_CONFIGS
                if name in self.outcomes
                and not self.outcomes[name].agrees_with(reference)]

    @property
    def divergent(self) -> bool:
        return bool(self.divergent_configs())

    def report(self) -> str:
        lines = [f"query: {self.query}", f"over:  {self.corpus}"]
        for name, outcome in self.outcomes.items():
            marker = (" " if name == REFERENCE
                      or outcome.agrees_with(self.reference) else "!")
            lines.append(f"  {marker} {name:<12} {outcome.render()}")
        return "\n".join(lines)


class DiffHarness:
    """Differential comparison over reproducible corpora.

    Stores are built once per :class:`CorpusSpec` and treated as
    read-only afterwards (a full-text index is installed so the
    ``optimized`` configurations exercise the index rewrite).
    ``metrics`` is an optional :class:`repro.observe.MetricsRegistry`;
    progress lands in ``diffcheck.*`` counters.
    """

    def __init__(self, metrics=None,
                 configs: tuple[str, ...] = ALGEBRA_CONFIGS) -> None:
        unknown = [c for c in configs if c not in ALGEBRA_CONFIGS]
        if unknown:
            raise ValueError(f"unknown diffcheck configs: {unknown}")
        self.metrics = metrics
        self.configs = tuple(configs)
        self._stores: dict[CorpusSpec, object] = {}

    # -- stores --------------------------------------------------------------

    def store_for(self, spec: CorpusSpec):
        store = self._stores.get(spec)
        if store is None:
            from repro import DocumentStore
            from repro.corpus import ARTICLE_DTD
            store = DocumentStore(ARTICLE_DTD, backend="algebra")
            for tree in spec.trees():
                store.load_tree(tree, validate=False)
            store.build_text_index()
            store.build_structural_index()
            # the ``sql`` configuration's relational backend, sharing
            # the store's epoch so the shred stays fresh
            from repro.sqlbackend.backend import SQLBackend
            store._engine.sql_backend = SQLBackend(
                store.instance, epoch_source=store.plan_cache,
                metrics=self.metrics)
            self._stores[spec] = store
            if self.metrics is not None:
                self.metrics.inc("diffcheck.corpora_built")
        return store

    # -- comparison ----------------------------------------------------------

    def compare(self, spec: CorpusSpec, query: Query) -> Comparison:
        store = self.store_for(spec)
        engine = store._engine
        outcomes: dict = {}
        outcomes[REFERENCE] = self._run(
            lambda: evaluate_query(query, engine.ctx.fork()))
        plan = error = None
        try:
            from repro.algebra.compile import compile_query
            from repro.plancheck.verifier import check_plan
            plan = compile_query(query, engine.instance.schema,
                                 path_semantics="restricted")
            # pre-execution static gate: a compiled plan that fails
            # verification is itself a divergence (the label
            # PlanVerificationError is deliberately *not* coarsened to
            # "rejected" — the reference side succeeded)
            check_plan(plan, query=query, stage="compile",
                       metrics=self.metrics)
        except Exception as exc:  # compile failure hits every config
            error = _error_label(exc)
        for name in self.configs:
            if error is not None:
                outcomes[name] = Outcome(error=error)
                continue
            outcomes[name] = self._run(
                lambda name=name: self._execute(name, plan, engine,
                                                query))
        comparison = Comparison(corpus=spec, query=query,
                                outcomes=outcomes)
        if self.metrics is not None:
            self.metrics.inc("diffcheck.queries")
            self.metrics.inc("diffcheck.configs_compared",
                             len(self.configs))
            self.metrics.inc("diffcheck.divergences"
                             if comparison.divergent
                             else "diffcheck.agreements")
        return comparison

    @staticmethod
    def _run(thunk) -> Outcome:
        try:
            return Outcome(result=thunk())
        except Exception as exc:
            return Outcome(error=_error_label(exc))

    @staticmethod
    def _execute(name: str, plan, engine, query=None) -> SetValue:
        """Optimizer calls use ``verify="raise"``: every rewrite stage
        of every configuration is gated by the plancheck verifier, and
        a stage that breaks plan well-formedness surfaces as a
        ``PlanVerificationError`` divergence instead of (or before) a
        wrong result."""
        from repro.algebra.execute import execute_plan
        from repro.algebra.optimizer import optimize
        if name == "unoptimized":
            return execute_plan(plan, engine.ctx.fork())
        if name == "optimized":
            return execute_plan(optimize(plan, factor=False,
                                         verify="raise", query=query),
                                engine.ctx.fork())
        if name == "structural":
            return execute_plan(optimize(plan, structural=True,
                                         verify="raise", query=query),
                                engine.ctx.fork())
        if name == "costed":
            manager = getattr(engine, "stats", None)
            snapshot = manager.snapshot() if manager is not None else None
            return execute_plan(
                optimize(plan, verify="raise", query=query,
                         stats=snapshot),
                engine.ctx.fork())
        if name == "sql":
            from repro.errors import SQLUnsupportedError
            structural = optimize(plan, structural=True,
                                  verify="raise", query=query)
            backend = engine.sql_backend
            try:
                hybrid = backend.compile(structural)
                return backend.execute(hybrid, engine.ctx.fork())
            except SQLUnsupportedError:
                # the engine's serving fallback: run the plan instead
                return execute_plan(structural, engine.ctx.fork())
        factored = optimize(plan, verify="raise", query=query)
        if name == "factored":
            return execute_plan(factored, engine.ctx.fork())
        # cached: the same (factored) plan object re-executed on a fresh
        # fork — the prepared-query path after a cache hit
        execute_plan(factored, engine.ctx.fork())
        return execute_plan(factored, engine.ctx.fork())

    # -- the fuzz loop -------------------------------------------------------

    def sweep(self, cases, on_divergence=None) -> list[Comparison]:
        """Compare every case; returns the divergent comparisons.

        ``on_divergence(case, comparison)`` is invoked as they are
        found (the CLI hooks minimization + serialization in there).
        """
        divergent = []
        for case in cases:
            comparison = self.compare(case.corpus, case.query)
            if comparison.divergent:
                divergent.append(comparison)
                if on_divergence is not None:
                    on_divergence(case, comparison)
        return divergent
