"""Differential correctness checking (the standing oracle).

The Section-5.4 claim — the algebraization is *equivalent* to the
calculus — is the contract every optimization layer (index rewrite,
plan cache, shared-prefix DAG) builds on.  This package keeps that
contract executable:

* :mod:`repro.diffcheck.generator` — a seeded random generator of
  calculus queries spanning the full surface (path and attribute
  variables, marked-union selectors, ordered-tuple positional access,
  ``contains``/``near`` text predicates, negation, quantifiers) and of
  randomized corpora specs over :mod:`repro.corpus.generator`;
* :mod:`repro.diffcheck.harness` — runs each query through the
  calculus interpreter and the algebra backend in every optimizer
  configuration (unoptimized, optimized, factored DAG, structural,
  prepared/cached, costed, and the relational ``sql`` hybrid) and
  flags any disagreement;
* :mod:`repro.diffcheck.minimize` — a delta-debugging minimizer that
  shrinks a failing (corpus, query) pair to a minimal repro;
* :mod:`repro.diffcheck.fixtures` — replayable JSON serialization of
  minimized repros (checked in under ``tests/diffcheck/fixtures``);
* ``python -m repro.diffcheck`` — the CLI entry point
  (``--budget N --seed S``), used by the per-PR smoke run and the
  nightly fuzz workflow.

Progress is observable through ``diffcheck.*`` counters on a
:class:`repro.observe.MetricsRegistry`.

Policy (see README): a divergence found here is a bug.  It must either
be fixed in the same change or land as a checked-in tracking fixture
with an xfail replay — never as a code comment.
"""

from repro.diffcheck.generator import (
    CorpusSpec,
    GeneratedCase,
    QueryGenerator,
    generate_cases,
)
from repro.diffcheck.harness import (
    ALGEBRA_CONFIGS,
    Comparison,
    DiffHarness,
    Outcome,
)
from repro.diffcheck.minimize import minimize
from repro.diffcheck.fixtures import (
    decode_query,
    encode_query,
    load_fixture,
    save_fixture,
)

__all__ = [
    "ALGEBRA_CONFIGS", "Comparison", "CorpusSpec", "DiffHarness",
    "GeneratedCase", "Outcome", "QueryGenerator", "decode_query",
    "encode_query", "generate_cases", "load_fixture", "minimize",
    "save_fixture",
]
