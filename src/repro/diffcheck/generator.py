"""Seeded random (corpus, query) case generation.

Queries are generated directly in the calculus (the common input of
both backends) over the Figure-1 article schema, with the shape the
equivalence tests established::

    { a, vars(path)... | a ∈ Articles ∧ a PATH(components) ∧ residuals }

Every grammar production the surface offers is reachable: path
variables, ground attribute selections, marked-union selectors
(``a1``/``a2``/``figure``/``paragr``), attribute variables, constant
and variable positional access (ordered tuples view), dereferences,
value and set bindings, ``contains``/``near`` text predicates,
negation, and ∀/∃ quantifiers.  Each generated case carries the set of
productions it exercises, so coverage is testable.

The RNG is the same tiny deterministic LCG the corpus generator uses —
a case is fully determined by its seed, which is what makes minimized
repros replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Implies,
    In,
    Not,
    PathAtom,
    Pred,
    Query,
)
from repro.calculus.terms import (
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    Index,
    ListTerm,
    Name,
    PathTerm,
    PathVar,
    Sel,
    SetBind,
)


@dataclass(frozen=True)
class CorpusSpec:
    """A reproducible corpus: ``generate_corpus(count, seed)`` filtered
    to the documents whose indices are in ``keep`` (``None`` = all).

    The spec — not the documents — is what fixtures serialize; the
    corpus generator is deterministic, so the spec is the corpus.
    """

    count: int
    seed: int
    keep: tuple[int, ...] | None = None

    def indices(self) -> tuple[int, ...]:
        if self.keep is None:
            return tuple(range(self.count))
        return self.keep

    def trees(self) -> list:
        from repro.corpus.generator import generate_corpus
        generated = generate_corpus(self.count, seed=self.seed)
        return [generated[i] for i in self.indices()]

    def __str__(self) -> str:
        kept = "all" if self.keep is None else list(self.keep)
        return f"corpus(count={self.count}, seed={self.seed}, keep={kept})"


@dataclass
class GeneratedCase:
    """One differential trial: a corpus, a query, and the grammar
    productions the query exercises (for coverage assertions)."""

    corpus: CorpusSpec
    query: Query
    features: frozenset[str] = field(default_factory=frozenset)
    case_seed: int = 0


#: Ground attribute names of the article schema (tuple selections).
ATTRIBUTES = ("title", "authors", "affil", "abstract", "sections",
              "acknowl", "status", "bodies", "subsectns", "caption")

#: Union markers of the article schema (marked-union selectors).
MARKERS = ("a1", "a2", "figure", "paragr")

#: Text patterns the corpus generator plants with useful selectivity.
PATTERNS = ("final", "draft", "SGML", "complex object", "object",
            "OODBMS")

_COMPONENT_KINDS = (
    "pathvar", "sel", "marker", "attvar", "index", "indexvar",
    "deref", "bind", "setbind",
)

_RESIDUAL_KINDS = ("none", "negation", "contains", "near", "forall",
                   "exists")


class _Rng:
    """The corpus generator's deterministic LCG (no global state)."""

    def __init__(self, seed: int) -> None:
        self.state = seed % (2 ** 31) or 1

    def next(self) -> int:
        self.state = (self.state * 1103515245 + 12345) % (2 ** 31)
        return self.state

    def range(self, low: int, high: int) -> int:
        """Inclusive bounds."""
        return low + self.next() % (high - low + 1)

    def pick(self, items):
        return items[self.next() % len(items)]


class QueryGenerator:
    """Generate :class:`GeneratedCase`\\ s from a seed stream."""

    def __init__(self, seed: int,
                 corpus_sizes: tuple[int, ...] = (1, 2, 4, 9)) -> None:
        self.seed = seed
        self.corpus_sizes = corpus_sizes

    def case(self, index: int) -> GeneratedCase:
        """The ``index``-th case of this generator's stream.  Cases are
        independent (one derived seed each), so any subset replays."""
        case_seed = self.seed * 100_003 + index
        rng = _Rng(case_seed)
        corpus = CorpusSpec(count=rng.pick(self.corpus_sizes),
                            seed=rng.range(1, 50))
        query, features = self._query(rng)
        return GeneratedCase(corpus=corpus, query=query,
                             features=features, case_seed=case_seed)

    # -- query construction --------------------------------------------------

    def _query(self, rng: _Rng) -> tuple[Query, frozenset[str]]:
        features: set[str] = set()
        article = DataVar("a")
        components, bound_vars = self._components(rng, features)
        atom = PathAtom(article, PathTerm(components))
        conjuncts: list = [In(article, Name("Articles")), atom]
        witness = (bound_vars or [article])[-1]
        for _ in range(rng.range(0, 2)):
            residual = self._residual(rng, article, witness, features)
            if residual is not None:
                conjuncts.append(residual)
        head = [article] + list(atom.path.variables())
        return Query(head, And(*conjuncts)), frozenset(features)

    def _components(self, rng: _Rng,
                    features: set[str]) -> tuple[list, list]:
        count = rng.range(1, 4)
        components: list = []
        bound: list = []
        fresh = iter(range(100))
        for _ in range(count):
            kind = rng.pick(_COMPONENT_KINDS)
            features.add(kind)
            if kind == "pathvar":
                components.append(PathVar(f"P{next(fresh)}"))
            elif kind == "sel":
                components.append(Sel(rng.pick(ATTRIBUTES)))
            elif kind == "marker":
                components.append(Sel(rng.pick(MARKERS)))
            elif kind == "attvar":
                components.append(Sel(AttVar(f"A{next(fresh)}")))
            elif kind == "index":
                components.append(Index(rng.range(0, 2)))
            elif kind == "indexvar":
                components.append(Index(DataVar(f"I{next(fresh)}")))
            elif kind == "deref":
                components.append(Deref())
            elif kind == "bind":
                variable = DataVar(f"X{next(fresh)}")
                components.append(Bind(variable))
                bound.append(variable)
            else:
                variable = DataVar(f"S{next(fresh)}")
                components.append(SetBind(variable))
                bound.append(variable)
        if not bound:
            # guarantee a data witness for residual predicates
            variable = DataVar("Xlast")
            components.append(Bind(variable))
            features.add("bind")
            bound.append(variable)
        return components, bound

    def _residual(self, rng: _Rng, article: DataVar, witness: DataVar,
                  features: set[str]):
        kind = rng.pick(_RESIDUAL_KINDS)
        if kind == "none":
            return None
        features.add(kind)
        if kind == "negation":
            return Not(Eq(witness, Const(rng.pick(PATTERNS))))
        if kind == "contains":
            return Pred("contains", [witness, Const(rng.pick(PATTERNS))])
        if kind == "near":
            return Pred("near", [witness, Const("complex"),
                                 Const("object"),
                                 Const(rng.range(1, 6))])
        if kind == "forall":
            probe = DataVar("q")
            return Forall([probe], Implies(
                In(probe, ListTerm([witness])), Eq(probe, witness)))
        # exists
        probe = DataVar("e")
        return Exists([probe], In(probe, ListTerm([witness])))


def generate_cases(budget: int, seed: int, **options) -> list[GeneratedCase]:
    """The first ``budget`` cases of the seed's stream."""
    generator = QueryGenerator(seed, **options)
    return [generator.case(index) for index in range(budget)]
