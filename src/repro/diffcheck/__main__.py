"""``python -m repro.diffcheck`` — the differential fuzz loop.

Fuzz mode (default) generates ``--budget`` (corpus, query) cases from
``--seed``, compares the calculus interpreter against every algebra
configuration, minimizes each divergence with delta debugging and
writes it as a replayable fixture under ``--out``.  Exit status is the
number of *distinct minimized* divergences (0 = all clear), so CI can
gate on it directly.

Replay mode (``--replay FIXTURE...``) re-runs checked-in fixtures and
reports which still diverge.

Examples::

    python -m repro.diffcheck --budget 60 --seed 7          # PR smoke
    python -m repro.diffcheck --budget 3000 --seed 1 --out repros/
    python -m repro.diffcheck --replay tests/diffcheck/fixtures/*.json
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.diffcheck.fixtures import load_fixture, save_fixture
from repro.diffcheck.generator import QueryGenerator
from repro.diffcheck.harness import ALGEBRA_CONFIGS, DiffHarness
from repro.diffcheck.minimize import minimize
from repro.observe import MetricsRegistry


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diffcheck",
        description="differential correctness checking: calculus "
                    "interpreter vs algebra backend (all optimizer "
                    "configurations)")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of generated cases (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    parser.add_argument("--out", default="diffcheck-repros",
                        help="directory for minimized repro fixtures "
                             "(default ./diffcheck-repros)")
    parser.add_argument("--configs", nargs="+",
                        default=list(ALGEBRA_CONFIGS),
                        choices=list(ALGEBRA_CONFIGS),
                        help="algebra configurations to compare")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first divergence")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report raw divergences without shrinking")
    parser.add_argument("--replay", nargs="+", metavar="FIXTURE",
                        help="replay fixture files instead of fuzzing")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-divergence reports")
    return parser


def _fuzz(args, harness: DiffHarness, metrics: MetricsRegistry) -> int:
    generator = QueryGenerator(args.seed)
    minimized: list[tuple] = []
    for index in range(args.budget):
        case = generator.case(index)
        comparison = harness.compare(case.corpus, case.query)
        if not comparison.divergent:
            continue
        if not args.quiet:
            print(f"[case {index}] DIVERGENCE "
                  f"({', '.join(comparison.divergent_configs())})")
            print(comparison.report())
        spec, query = case.corpus, case.query
        if not args.no_minimize:
            def diverges(candidate_spec, candidate_query):
                return harness.compare(candidate_spec,
                                       candidate_query).divergent
            spec, query = minimize(spec, query, diverges,
                                   metrics=metrics)
            if not args.quiet:
                print("minimized to:")
                print(harness.compare(spec, query).report())
        key = (str(spec), str(query))
        if key not in {(str(s), str(q)) for s, q, _ in minimized}:
            minimized.append((spec, query, index))
        if args.fail_fast:
            break
    os.makedirs(args.out, exist_ok=True)
    for position, (spec, query, index) in enumerate(minimized):
        final = harness.compare(spec, query)
        path = os.path.join(args.out,
                            f"divergence_{position:03d}.json")
        save_fixture(path, spec, query, meta={
            "found_by": {"seed": args.seed, "budget": args.budget,
                         "case": index},
            "divergent_configs": final.divergent_configs(),
            "report": final.report(),
        })
        print(f"wrote {path}")
    return len(minimized)


def _replay(args, harness: DiffHarness) -> int:
    still_divergent = 0
    for path in args.replay:
        spec, query, _ = load_fixture(path)
        comparison = harness.compare(spec, query)
        status = "DIVERGENT" if comparison.divergent else "ok"
        print(f"{path}: {status}")
        if comparison.divergent:
            still_divergent += 1
            if not args.quiet:
                print(comparison.report())
    return still_divergent


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    metrics = MetricsRegistry()
    harness = DiffHarness(metrics=metrics,
                          configs=tuple(args.configs))
    if args.replay:
        failures = _replay(args, harness)
    else:
        failures = _fuzz(args, harness, metrics)
    counters = metrics.snapshot()["counters"]
    summary = ", ".join(f"{name.split('.', 1)[1]}={value}"
                        for name, value in counters.items()
                        if name.startswith("diffcheck."))
    print(f"diffcheck: {summary or 'no work done'}")
    if failures:
        print(f"diffcheck: {failures} divergence(s) — every divergence "
              "is a bug: fix it or check in a tracking fixture")
    else:
        print("diffcheck: zero divergences")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
