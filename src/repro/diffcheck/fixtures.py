"""Replayable repro fixtures.

A fixture is one JSON document holding a :class:`CorpusSpec` (the
corpus generator is deterministic, so the spec *is* the corpus), the
calculus query as a serialized AST, and free-form metadata (what was
divergent, which run found it).  ``tests/diffcheck/test_replay.py``
replays every checked-in fixture on every test run — a fixed
divergence stays fixed.

The encoding covers exactly the surface the diffcheck generator (and
its minimizer) can produce; an unknown node is a loud error, never a
silent drop.
"""

from __future__ import annotations

import json

from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Implies,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
    Subset,
)
from repro.calculus.terms import (
    AttName,
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    Index,
    ListTerm,
    Name,
    PathTerm,
    PathVar,
    Sel,
    SetBind,
    SetTerm,
)
from repro.diffcheck.generator import CorpusSpec

FORMAT = "repro.diffcheck/1"


# -- encoding ---------------------------------------------------------------


def encode_query(query: Query) -> dict:
    return {"head": [_encode(v) for v in query.head],
            "formula": _encode(query.formula)}


def _encode(node) -> dict:
    if isinstance(node, DataVar):
        return {"t": "datavar", "name": node.name}
    if isinstance(node, PathVar):
        return {"t": "pathvar", "name": node.name}
    if isinstance(node, AttVar):
        return {"t": "attvar", "name": node.name}
    if isinstance(node, AttName):
        return {"t": "attname", "name": node.name}
    if isinstance(node, Name):
        return {"t": "name", "name": node.name}
    if isinstance(node, Const):
        if not isinstance(node.value, (int, str, bool, float)):
            raise ValueError(
                f"only atomic constants serialize, got {node.value!r}")
        return {"t": "const", "value": node.value}
    if isinstance(node, ListTerm):
        return {"t": "list", "items": [_encode(i) for i in node.items]}
    if isinstance(node, SetTerm):
        return {"t": "setterm", "items": [_encode(i) for i in node.items]}
    if isinstance(node, Sel):
        return {"t": "sel", "attribute": _encode(node.attribute)}
    if isinstance(node, Index):
        return {"t": "index", "index": (node.index
                                        if isinstance(node.index, int)
                                        else _encode(node.index))}
    if isinstance(node, Deref):
        return {"t": "deref"}
    if isinstance(node, Bind):
        return {"t": "bind", "variable": _encode(node.variable)}
    if isinstance(node, SetBind):
        return {"t": "setbind", "variable": _encode(node.variable)}
    if isinstance(node, PathTerm):
        return {"t": "pathterm",
                "components": [_encode(c) for c in node.components]}
    if isinstance(node, PathAtom):
        return {"t": "pathatom", "root": _encode(node.root),
                "path": _encode(node.path)}
    if isinstance(node, And):
        return {"t": "and",
                "conjuncts": [_encode(c) for c in node.conjuncts]}
    if isinstance(node, Or):
        return {"t": "or",
                "disjuncts": [_encode(d) for d in node.disjuncts]}
    if isinstance(node, Not):
        return {"t": "not", "child": _encode(node.child)}
    if isinstance(node, Implies):
        return {"t": "implies", "antecedent": _encode(node.antecedent),
                "consequent": _encode(node.consequent)}
    if isinstance(node, Forall):
        return {"t": "forall",
                "variables": [_encode(v) for v in node.variables],
                "body": _encode(node.body)}
    if isinstance(node, Exists):
        return {"t": "exists",
                "variables": [_encode(v) for v in node.variables],
                "body": _encode(node.body)}
    if isinstance(node, In):
        return {"t": "in", "element": _encode(node.element),
                "collection": _encode(node.collection)}
    if isinstance(node, Eq):
        return {"t": "eq", "left": _encode(node.left),
                "right": _encode(node.right)}
    if isinstance(node, Subset):
        return {"t": "subset", "left": _encode(node.left),
                "right": _encode(node.right)}
    if isinstance(node, Pred):
        return {"t": "pred", "predicate": node.predicate,
                "arguments": [_encode(a) for a in node.arguments]}
    raise ValueError(f"cannot serialize query node {node!r}")


# -- decoding ---------------------------------------------------------------


def decode_query(payload: dict) -> Query:
    return Query([_decode(v) for v in payload["head"]],
                 _decode(payload["formula"]))


def _decode(payload: dict):
    tag = payload["t"]
    if tag == "datavar":
        return DataVar(payload["name"])
    if tag == "pathvar":
        return PathVar(payload["name"])
    if tag == "attvar":
        return AttVar(payload["name"])
    if tag == "attname":
        return AttName(payload["name"])
    if tag == "name":
        return Name(payload["name"])
    if tag == "const":
        return Const(payload["value"])
    if tag == "list":
        return ListTerm([_decode(i) for i in payload["items"]])
    if tag == "setterm":
        return SetTerm([_decode(i) for i in payload["items"]])
    if tag == "sel":
        return Sel(_decode(payload["attribute"]))
    if tag == "index":
        index = payload["index"]
        return Index(index if isinstance(index, int) else _decode(index))
    if tag == "deref":
        return Deref()
    if tag == "bind":
        return Bind(_decode(payload["variable"]))
    if tag == "setbind":
        return SetBind(_decode(payload["variable"]))
    if tag == "pathterm":
        return PathTerm([_decode(c) for c in payload["components"]])
    if tag == "pathatom":
        return PathAtom(_decode(payload["root"]),
                        _decode(payload["path"]))
    if tag == "and":
        return And(*[_decode(c) for c in payload["conjuncts"]])
    if tag == "or":
        return Or(*[_decode(d) for d in payload["disjuncts"]])
    if tag == "not":
        return Not(_decode(payload["child"]))
    if tag == "implies":
        return Implies(_decode(payload["antecedent"]),
                       _decode(payload["consequent"]))
    if tag == "forall":
        return Forall([_decode(v) for v in payload["variables"]],
                      _decode(payload["body"]))
    if tag == "exists":
        return Exists([_decode(v) for v in payload["variables"]],
                      _decode(payload["body"]))
    if tag == "in":
        return In(_decode(payload["element"]),
                  _decode(payload["collection"]))
    if tag == "eq":
        return Eq(_decode(payload["left"]), _decode(payload["right"]))
    if tag == "subset":
        return Subset(_decode(payload["left"]),
                      _decode(payload["right"]))
    if tag == "pred":
        return Pred(payload["predicate"],
                    [_decode(a) for a in payload["arguments"]])
    raise ValueError(f"cannot decode query node tagged {tag!r}")


# -- fixture files ----------------------------------------------------------


def save_fixture(path, spec: CorpusSpec, query: Query,
                 meta: dict | None = None) -> None:
    payload = {
        "format": FORMAT,
        "corpus": {"count": spec.count, "seed": spec.seed,
                   "keep": (None if spec.keep is None
                            else list(spec.keep))},
        "query": encode_query(query),
        "rendered": str(query),
        "meta": meta or {},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_fixture(path) -> tuple[CorpusSpec, Query, dict]:
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a diffcheck fixture (format "
            f"{payload.get('format')!r})")
    corpus = payload["corpus"]
    spec = CorpusSpec(count=corpus["count"], seed=corpus["seed"],
                      keep=(None if corpus["keep"] is None
                            else tuple(corpus["keep"])))
    return spec, decode_query(payload["query"]), payload.get("meta", {})
