"""Structured findings of the static analyses.

Two finding shapes, one per plancheck layer:

* :class:`PlanFault` — the plan **verifier**'s unit: a violated
  dataflow/structural invariant of an algebra plan, attached to the
  operator that exhibits it and to the optimizer stage after which it
  appeared (so a broken rewrite is named, not just detected).
* :class:`Diagnostic` — the query **linter**'s unit: a schema-aware
  observation about the calculus form of a query, carrying a severity
  (``error`` stops execution, ``warning`` does not), a source position
  when one can be recovered from the query text, and a fix hint.

Both are plain immutable records with a human rendering; machine
consumers read the attributes, the CLI prints :meth:`render`.
"""

from __future__ import annotations

#: Severity levels, in increasing order of trouble.
SEVERITIES = ("warning", "error")


class PlanFault:
    """One violated invariant found by the plan verifier."""

    __slots__ = ("code", "message", "operator", "stage", "hint")

    def __init__(self, code: str, message: str, operator: str = "",
                 stage: str | None = None, hint: str | None = None) -> None:
        self.code = code
        self.message = message
        #: One-line rendering of the offending operator (its class name
        #: and parameters), never the whole subtree.
        self.operator = operator
        #: The optimizer stage after which the fault was observed
        #: (``compile``, ``structuralize``, ``index``, ``pushdown``,
        #: ``factor``, ``cost``) — ``None`` for direct verifier calls.
        self.stage = stage
        self.hint = hint

    def render(self) -> str:
        where = f" after {self.stage}" if self.stage else ""
        lines = [f"{self.code}{where}: {self.message}"]
        if self.operator:
            lines.append(f"  at {self.operator}")
        if self.hint:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PlanFault({self.code}, {self.message!r})"


class Diagnostic:
    """One linter finding over a query text."""

    __slots__ = ("code", "severity", "message", "line", "column",
                 "fragment", "hint")

    def __init__(self, code: str, severity: str, message: str,
                 line: int | None = None, column: int | None = None,
                 fragment: str | None = None,
                 hint: str | None = None) -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.code = code
        self.severity = severity
        self.message = message
        self.line = line
        self.column = column
        #: The query-text fragment the position points at (when the
        #: calculus-level finding could be mapped back to the source).
        self.fragment = fragment
        self.hint = hint

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        position = ""
        if self.line is not None:
            position = f"{self.line}:{self.column or 1}: "
        lines = [f"{position}{self.severity} {self.code}: {self.message}"]
        if self.hint:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Diagnostic({self.code}, {self.severity}, {self.message!r})"


def position_of(text: str, fragment: str | None) -> tuple[int | None,
                                                          int | None]:
    """1-based (line, column) of ``fragment``'s first occurrence in
    ``text`` — the linter's best-effort source mapping (the calculus
    form carries no positions, but variable and attribute names survive
    translation verbatim)."""
    if not fragment:
        return None, None
    at = text.find(fragment)
    if at < 0:
        return None, None
    line = text.count("\n", 0, at) + 1
    last_newline = text.rfind("\n", 0, at)
    return line, at - last_newline
