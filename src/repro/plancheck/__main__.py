"""``python -m repro.plancheck`` — lint queries, verify their plans.

Examples::

    python -m repro.plancheck "select t from my_doc PATH_p.title(t)"
    python -m repro.plancheck --file queries.txt --verify
    python -m repro.plancheck --dtd my.dtd --json "select ..."

Queries are checked against the Figure-1 article DTD unless ``--dtd``
supplies another one; ``--verify`` additionally compiles each clean
query to the algebra and runs the plan verifier over every optimizer
configuration.  The exit status is the number of error-severity
diagnostics plus plan faults — ``0`` means clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.oodb.schema import Schema

from repro.plancheck.lint import lint_query
from repro.plancheck.verifier import verify_plan


def _load_schema(dtd_path: str | None) -> Schema:
    from repro.mapping.dtd_to_schema import map_dtd
    from repro.sgml.dtd_parser import parse_dtd
    if dtd_path is None:
        from repro.corpus import ARTICLE_DTD
        dtd_text = ARTICLE_DTD
    else:
        with open(dtd_path) as handle:
            dtd_text = handle.read()
    return map_dtd(parse_dtd(dtd_text)).schema


def _verify_query(text: str, schema: Schema) -> list:
    """Compile ``text`` and verify the plan after every optimizer
    configuration; returns the combined fault list."""
    from repro.algebra.compile import compile_query
    from repro.algebra.optimizer import optimize
    from repro.o2sql.parser import parse
    from repro.o2sql.translate import to_calculus
    query = to_calculus(parse(text), schema.roots.keys())
    plan = compile_query(query, schema)
    faults = list(verify_plan(plan, query=query, stage="compile"))
    for label, options in (
            ("optimized", {"factor": False}),
            ("factored", {}),
            ("structural", {"structural": True})):
        rewritten = optimize(plan, verify="off", **options)
        faults.extend(verify_plan(rewritten, query=query, stage=label))
    return faults


def _as_json(text: str, diagnostics: list, faults: list) -> dict:
    return {
        "query": text,
        "diagnostics": [
            {"code": d.code, "severity": d.severity,
             "message": d.message, "line": d.line, "column": d.column,
             "hint": d.hint}
            for d in diagnostics],
        "plan_faults": [
            {"code": f.code, "message": f.message, "stage": f.stage,
             "operator": f.operator, "hint": f.hint}
            for f in faults],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.plancheck",
        description="Statically lint O₂SQL queries and verify their "
                    "compiled plans.")
    parser.add_argument("queries", nargs="*",
                        help="query texts to check")
    parser.add_argument("--file", help="read one query per non-empty "
                        "line from this file")
    parser.add_argument("--dtd", help="DTD file defining the schema "
                        "(default: the built-in article DTD)")
    parser.add_argument("--verify", action="store_true",
                        help="also compile clean queries and verify "
                        "the plan after every optimizer configuration")
    parser.add_argument("--json", action="store_true",
                        dest="as_json", help="machine-readable output")
    args = parser.parse_args(argv)

    texts = list(args.queries)
    if args.file:
        with open(args.file) as handle:
            texts.extend(line.strip() for line in handle
                         if line.strip())
    if not texts:
        parser.error("no queries given (positional or --file)")

    schema = _load_schema(args.dtd)
    failures = 0
    reports = []
    for text in texts:
        diagnostics = lint_query(text, schema)
        clean = not any(d.is_error for d in diagnostics)
        faults = []
        if args.verify and clean:
            faults = _verify_query(text, schema)
        failures += sum(1 for d in diagnostics if d.is_error)
        failures += len(faults)
        if args.as_json:
            reports.append(_as_json(text, diagnostics, faults))
            continue
        if diagnostics or faults:
            print(f"== {text}")
            for diagnostic in diagnostics:
                print(diagnostic.render())
            for fault in faults:
                print(fault.render())
        else:
            print(f"ok {text}")
    if args.as_json:
        print(json.dumps(reports, indent=2))
    return failures


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
