"""Static analysis over plans and queries (the compile-time gate).

Two layers:

* the **plan verifier** (:mod:`repro.plancheck.verifier`) — a dataflow
  pass over algebra operator trees driven by the per-operator
  ``produces()``/``consumes()`` contracts; the optimizer runs it after
  every rewrite stage, so a rewrite that breaks plan well-formedness is
  caught at compile time rather than by a fuzz sweep;
* the **query linter** (:mod:`repro.plancheck.lint`) — schema-aware
  diagnostics over the calculus form of a query (statically empty path
  atoms, impossible comparisons, unused variables, constant
  predicates), surfaced via ``DocumentStore.lint`` and
  ``python -m repro.plancheck``.

Counters land under ``plancheck.*`` in ``metrics()`` and
``explain_analyze`` snapshots.
"""

from repro.plancheck.diagnostics import Diagnostic, PlanFault
from repro.plancheck.lint import lint_query
from repro.plancheck.verifier import (
    check_plan,
    verify_plan,
    verify_structural_index,
)

__all__ = [
    "Diagnostic",
    "PlanFault",
    "check_plan",
    "lint_query",
    "verify_plan",
    "verify_structural_index",
]
