"""The schema-aware query linter.

Reuses the front half of the pipeline (parse → translate → safety →
type inference) and reports its rejections as positioned *error*
diagnostics instead of exceptions, then layers schema-aware *warnings*
over queries that pass:

* ``PC-W001`` — a variable is bound but never used (it appears exactly
  once, at its binding site);
* ``PC-W002`` — a comparison between terms whose inferred atomic types
  are disjoint (it can never hold on any instance);
* ``PC-W003`` — a constant predicate (always true: redundant; always
  false: the enclosing branch is dead);
* ``PC-E103`` — a statically-empty path atom (no schema path matches —
  Section 5.3's "this leads to a type error"), reported with a fix
  hint instead of a bare exception.

A query is **lint-clean** when it produces no error-severity
diagnostics; by construction a lint-clean query passes the safety check
and the type inference, so it can never raise
:class:`~repro.errors.SafetyError` at execution time.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Formula,
    Implies,
    In,
    Not,
    Or,
    Pred,
    Query,
)
from repro.calculus.inference import (
    _term_type,
    _walk_formula,
    infer_types,
)
from repro.calculus.safety import check_safety
from repro.calculus.terms import Const, DataVar
from repro.errors import (
    QueryError,
    QuerySyntaxError,
    QueryTypeError,
    SafetyError,
)
from repro.o2sql.parser import parse
from repro.o2sql.translate import to_calculus
from repro.oodb.schema import Schema
from repro.oodb.types import AtomicType, FLOAT, INTEGER
from repro.plancheck.diagnostics import Diagnostic, position_of


def lint_query(text: str, schema: Schema,
               metrics: Any = None) -> list[Diagnostic]:
    """Lint one O₂SQL query text against ``schema``.

    Never raises for query problems — every front-end rejection comes
    back as an error diagnostic; schema-aware heuristics add warnings.
    """
    diagnostics: list[Diagnostic] = []
    query = _front_end(text, schema, diagnostics)
    if query is not None:
        _warn_unused_variables(text, query, diagnostics)
        _warn_impossible_comparisons(text, query, schema, diagnostics)
        _warn_constant_predicates(text, query, diagnostics)
    if metrics is not None:
        metrics.inc("plancheck.lint_runs")
        if diagnostics:
            metrics.inc("plancheck.diagnostics", len(diagnostics))
    return diagnostics


def _front_end(text: str, schema: Schema,
               diagnostics: list[Diagnostic]) -> Query | None:
    """Parse → translate → safety → inference, rejections as errors."""
    try:
        node = parse(text)
    except QuerySyntaxError as exc:
        diagnostics.append(Diagnostic(
            "PC-E100", "error", f"syntax error: {exc}",
            line=exc.line, column=exc.column))
        return None
    try:
        query = to_calculus(node, schema.roots.keys())
    except QueryError as exc:
        diagnostics.append(Diagnostic(
            "PC-E101", "error", f"translation failed: {exc}",
            hint="check that every identifier names a persistence "
                 "root or a bound variable"))
        return None
    try:
        check_safety(query)
    except SafetyError as exc:
        diagnostics.append(Diagnostic(
            "PC-E102", "error", f"query is not range-restricted: {exc}",
            hint="every variable must be bound by a path predicate, "
                 "a membership, or an equality with a bound term"))
        return None
    try:
        infer_types(query, schema)
    except QueryTypeError as exc:
        message = str(exc)
        if "can never hold" in message:
            diagnostics.append(Diagnostic(
                "PC-E103", "error",
                f"statically empty path predicate: {message}",
                hint="no schema path matches — fix the attribute "
                     "names or start from a different root"))
        else:
            diagnostics.append(Diagnostic(
                "PC-E104", "error", f"type error: {message}"))
        return None
    return query


# -- warnings ---------------------------------------------------------------


def _warn_unused_variables(text: str, query: Query,
                           diagnostics: list[Diagnostic]) -> None:
    """A data variable occurring exactly once is bound and forgotten.

    Only user-written variables are reported: translation mints fresh
    variables that legitimately occur once, so a name must literally
    appear in the query text to qualify.  Path and attribute variables
    are exempt — a single-occurrence ``PATH_p`` *is* the idiomatic
    wildcard.
    """
    counts: dict = {}
    for variable in _occurrences(query.formula):
        counts[variable] = counts.get(variable, 0) + 1
    head = set(query.head)
    for variable, count in counts.items():
        if count != 1 or variable in head:
            continue
        if not isinstance(variable, DataVar):
            continue
        if variable.name not in text:
            continue
        line, column = position_of(text, variable.name)
        diagnostics.append(Diagnostic(
            "PC-W001", "warning",
            f"variable {variable} is bound but never used",
            line=line, column=column, fragment=variable.name,
            hint="drop the binding or use the variable in the select "
                 "clause or a predicate"))


def _occurrences(formula: Formula) -> Iterator[object]:
    """Every variable occurrence (with repetition), atoms and
    quantifier binders alike."""
    if isinstance(formula, And):
        for conjunct in formula.conjuncts:
            yield from _occurrences(conjunct)
    elif isinstance(formula, Or):
        for disjunct in formula.disjuncts:
            yield from _occurrences(disjunct)
    elif isinstance(formula, Not):
        yield from _occurrences(formula.child)
    elif isinstance(formula, Implies):
        yield from _occurrences(formula.antecedent)
        yield from _occurrences(formula.consequent)
    elif isinstance(formula, (Exists, Forall)):
        yield from _occurrences(formula.body)
    else:
        yield from formula._free()


def _warn_impossible_comparisons(text: str, query: Query, schema: Schema,
                                 diagnostics: list[Diagnostic]) -> None:
    """Equalities whose two sides have disjoint atomic types."""
    candidates: dict = {}
    try:
        _walk_formula(query.formula, schema, candidates)
    except QueryTypeError:  # pragma: no cover - front end reported it
        return
    for atom in _atoms(query.formula):
        if not isinstance(atom, Eq):
            continue
        left = _term_type(atom.left, schema, candidates)
        right = _term_type(atom.right, schema, candidates)
        if not (isinstance(left, AtomicType)
                and isinstance(right, AtomicType)):
            continue
        if left == right:
            continue
        numeric = {INTEGER, FLOAT}
        if left in numeric and right in numeric:
            continue  # 1 ≡ 1.0 holds under the ≡ equivalence
        fragment = _const_fragment(atom)
        line, column = position_of(text, fragment)
        diagnostics.append(Diagnostic(
            "PC-W002", "warning",
            f"comparison {atom} can never hold: {left} vs {right}",
            line=line, column=column, fragment=fragment,
            hint="the compared types are disjoint — the predicate is "
                 "always false"))


def _atoms(formula: Formula) -> Iterator[Formula]:
    if isinstance(formula, And):
        for conjunct in formula.conjuncts:
            yield from _atoms(conjunct)
    elif isinstance(formula, Or):
        for disjunct in formula.disjuncts:
            yield from _atoms(disjunct)
    elif isinstance(formula, Not):
        yield from _atoms(formula.child)
    elif isinstance(formula, Implies):
        yield from _atoms(formula.antecedent)
        yield from _atoms(formula.consequent)
    elif isinstance(formula, (Exists, Forall)):
        yield from _atoms(formula.body)
    else:
        yield formula


def _const_fragment(atom: Eq) -> str | None:
    for side in (atom.left, atom.right):
        if isinstance(side, Const) and isinstance(side.value, str):
            return side.value
        if isinstance(side, DataVar):
            return side.name
    return None


#: Constant comparison predicates the folder understands.
_COMPARATORS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _warn_constant_predicates(text: str, query: Query,
                              diagnostics: list[Diagnostic]) -> None:
    """Atoms over constants only fold at lint time: an always-false
    atom makes its conjunction dead, an always-true one is noise."""
    for atom in _atoms(query.formula):
        verdict = _fold(atom)
        if verdict is None:
            continue
        fragment = _const_fragment(atom) if isinstance(atom, Eq) else None
        line, column = position_of(text, fragment)
        if verdict:
            message = f"predicate {atom} is always true"
            hint = "the predicate is redundant — drop it"
        else:
            message = f"predicate {atom} is always false"
            hint = ("no row can satisfy it — the enclosing "
                    "conjunction is dead")
        diagnostics.append(Diagnostic(
            "PC-W003", "warning", message,
            line=line, column=column, fragment=fragment, hint=hint))


def _fold(atom: Formula) -> bool | None:
    """Truth value of a variable-free atom over atomic constants, or
    ``None`` when it cannot be decided purely statically."""
    if isinstance(atom, Eq):
        left, right = _const_value(atom.left), _const_value(atom.right)
        if left is None or right is None:
            return None
        if isinstance(left[0], bool) != isinstance(right[0], bool):
            return False
        if type(left[0]) is not type(right[0]) and not (
                isinstance(left[0], (int, float))
                and isinstance(right[0], (int, float))):
            return False
        return left[0] == right[0]
    if isinstance(atom, Pred) and atom.predicate in _COMPARATORS:
        if len(atom.arguments) != 2:
            return None
        left = _const_value(atom.arguments[0])
        right = _const_value(atom.arguments[1])
        if left is None or right is None:
            return None
        both_numbers = (isinstance(left[0], (int, float))
                        and isinstance(right[0], (int, float))
                        and not isinstance(left[0], bool)
                        and not isinstance(right[0], bool))
        both_strings = (isinstance(left[0], str)
                        and isinstance(right[0], str))
        if not (both_numbers or both_strings):
            return None
        return _COMPARATORS[atom.predicate](left[0], right[0])
    if isinstance(atom, In) and not atom.free_variables():
        return None  # collection constants: leave to execution
    return None


def _const_value(term: object) -> tuple | None:
    """``(value,)`` for an atomic constant term, else ``None`` (the
    tuple wrapper keeps a legitimate ``None``/``False`` payload
    distinguishable from "not a constant")."""
    if isinstance(term, Const) and isinstance(
            term.value, (bool, int, float, str)):
        return (term.value,)
    return None
