"""The static plan verifier — a dataflow pass over algebra plans.

Every operator declares a dataflow contract
(:meth:`~repro.algebra.operators.Operator.consumes` /
:meth:`~repro.algebra.operators.Operator.produces`); the verifier
threads a binding environment bottom-up through the plan DAG and
rejects any plan in which

* a consumed variable is not guaranteed bound by the operators below it
  (the signature bug of a broken rewrite: a filter pushed under its
  producer, an interval-join probe detached from its binder),
* the :class:`~repro.algebra.operators.SharedOp` memo structure is
  cyclic or replay-inconsistent (two distinct shared nodes with one id),
* a structural operator violates its shape invariants (a scan binding
  the variable it scans from, an attribute scan with both — or neither —
  of a fixed name and an attribute variable, an interval join whose
  recheck atom is not the fused ``out ≡ probe`` equality),
* the root projection does not bind its head, or does not match the
  query head it was compiled from,
* a union the cost stage reordered or pruned carries inconsistent
  :class:`~repro.stats.CostEvidence` — the kept+pruned indices do not
  partition the original branches, or a pruned branch lacks
  re-checkable zero evidence (``PC-COST``).

The pass is *sound for its contracts*, not a full type system: an
operator may over-approximate ``produces()`` (see
:class:`~repro.algebra.operators.FormulaOp`), which can only mask an
unbound-consumption fault one dynamic step earlier, never invent one —
exactly the right polarity for a gate that must stay silent on every
correct plan.  When the compiler recorded candidate types for the head
variables (``plan.var_types``), compile-time type facts embedded in
operators (``IndexFilterOp.oid_only``) are replayed against them.

:func:`verify_plan` returns the fault list; :func:`check_plan` raises
:class:`~repro.errors.PlanVerificationError` when it is non-empty.
:func:`verify_structural_index` checks the pre/post encoding invariants
of a built :class:`~repro.structindex.StructuralIndex` (interval
nesting, post-order permutation, sorted secondary slices that point at
values of the declared class).
"""

from __future__ import annotations

from typing import Any, Union

from repro.algebra.operators import (
    IndexFilterOp,
    IntervalJoinOp,
    Operator,
    ProjectOp,
    SeedOp,
    SelectOp,
    SharedOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
)
from repro.calculus.formulas import Eq, Query
from repro.calculus.terms import Const
from repro.errors import PlanVerificationError
from repro.oodb.types import ClassType
from repro.plancheck.diagnostics import PlanFault


def _describe(node: Operator) -> str:
    """First line of the operator's rendering (no subtree).

    ``describe`` renders the whole subtree before we take its first
    line — on a *cyclic* plan (exactly what PC-CYCLE reports) that
    recursion never terminates, so fall back to the class name."""
    try:
        return node.describe().splitlines()[0].strip()
    except RecursionError:
        return type(node).__name__


class _TopEnv:
    """The environment of a statically *dead* stream.

    The compiler encodes an impossible union branch as
    ``Select (0 = 1)`` over the branch plan: no row ever flows above
    it, so every consumption above is vacuously satisfied.  ``_TOP``
    is the lattice top — it absorbs unions with itself and satisfies
    every membership test."""

    def __contains__(self, variable: object) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return "<every variable (dead stream)>"


_TOP = _TopEnv()

#: A binding environment: the set of bound variables, or the dead-
#: stream top element.
Env = Union[frozenset, _TopEnv]


def _statically_false(atom: object) -> bool:
    """The compiler's dead-branch marker: an equality over unequal
    constants (canonically ``0 = 1``)."""
    if not isinstance(atom, Eq):
        return False
    left, right = atom.left, atom.right
    if not (isinstance(left, Const) and isinstance(right, Const)):
        return False
    try:
        return bool(left.value != right.value)
    except Exception:  # pragma: no cover - exotic constant values
        return False


def _minus(consumed: frozenset, env: Env) -> frozenset:
    if env is _TOP:
        return frozenset()
    return consumed - env


def _extend(env: Env, produced: frozenset) -> Env:
    if env is _TOP:
        return _TOP
    return env | produced


def _meet(envs: list[Env]) -> Env:
    """Greatest lower bound across union branches: a union row comes
    from *some* branch, so only the intersection of the live branches
    is guaranteed (dead branches contribute nothing — and constrain
    nothing)."""
    live = [env for env in envs if env is not _TOP]
    if not live:
        return _TOP
    return frozenset.intersection(*live)


def verify_plan(plan: Operator, query: Query | None = None,
                stage: str | None = None,
                metrics: Any = None,
                stats: Any = None) -> list[PlanFault]:
    """Run every static check over ``plan``; returns the faults found.

    ``query`` (the calculus form) enables the head-match check;
    ``stage`` tags faults with the optimizer stage they appeared after;
    ``metrics`` receives ``plancheck.verifications`` /
    ``plancheck.faults`` counters; ``stats`` (the snapshot the cost
    stage read) lets the ``PC-COST`` check re-derive zero evidence.
    """
    faults: list[PlanFault] = []
    _check_sharing(plan, stage, faults)
    envs: dict[int, Env] = {}
    active: set[int] = set()
    _env_of(plan, envs, active, stage, faults)
    _check_root(plan, query, envs, stage, faults)
    _check_cost(plan, stats, stage, faults)
    if metrics is not None:
        metrics.inc("plancheck.verifications")
        if faults:
            metrics.inc("plancheck.faults", len(faults))
    return faults


def check_plan(plan: Operator, query: Query | None = None,
               stage: str | None = None,
               metrics: Any = None,
               stats: Any = None) -> None:
    """:func:`verify_plan`, raising on any fault."""
    faults = verify_plan(plan, query=query, stage=stage, metrics=metrics,
                         stats=stats)
    if faults:
        where = f" after stage {stage!r}" if stage else ""
        summary = "; ".join(f"{f.code}: {f.message}" for f in faults[:3])
        if len(faults) > 3:
            summary += f"; ... ({len(faults)} faults)"
        raise PlanVerificationError(
            f"plan failed static verification{where}: {summary}",
            faults=faults)


# -- the dataflow pass ------------------------------------------------------


def _env_of(node: Operator, envs: dict[int, Env], active: set[int],
            stage: str | None, faults: list[PlanFault]) -> Env:
    """Variables guaranteed bound in every row ``node`` yields.

    Memoized by object identity so shared DAG nodes are visited once;
    ``active`` guards against cycles (a cyclic plan cannot execute —
    report it instead of recursing forever).
    """
    key = id(node)
    done = envs.get(key)
    if done is not None:
        return done
    if key in active:
        faults.append(PlanFault(
            "PC-CYCLE", "plan graph is cyclic", _describe(node), stage,
            hint="a rewrite linked an operator below itself"))
        envs[key] = frozenset()
        return envs[key]
    active.add(key)
    try:
        children = node.children()
        if isinstance(node, UnionOp):
            env = _meet([_env_of(branch, envs, active, stage, faults)
                         for branch in node.branches])
        elif children:
            env = _meet([_env_of(child, envs, active, stage, faults)
                         for child in children])
        else:
            env = frozenset()
            if not isinstance(node, SeedOp):
                faults.append(PlanFault(
                    "PC-LEAF", "leaf operator is not a Seed",
                    _describe(node), stage))
        unbound = _minus(node.consumes(), env)
        if unbound:
            names = ", ".join(sorted(str(v) for v in unbound))
            faults.append(PlanFault(
                "PC-UNBOUND",
                f"operator consumes unbound variable(s) {names}",
                _describe(node), stage,
                hint="a rewrite moved this operator below the "
                     "operator that binds them"))
        _check_shape(node, stage, faults)
        if isinstance(node, SelectOp) and _statically_false(node.atom):
            # the compiler's dead-branch marker: no row ever flows
            # above this node, so everything above it is vacuous
            env = _TOP
        else:
            env = _extend(env, node.produces())
        envs[key] = env
        return env
    finally:
        active.discard(key)


# -- per-operator shape invariants ------------------------------------------


def _check_shape(node: Operator, stage: str | None,
                 faults: list[PlanFault]) -> None:
    if isinstance(node, StructuralAttrScanOp):
        fixed = node.attr is not None
        variable = node.attr_var is not None
        if fixed == variable:
            faults.append(PlanFault(
                "PC-ATTRSCAN",
                "attribute scan needs exactly one of a fixed attribute "
                "name and an attribute variable",
                _describe(node), stage))
        if node.value_var in (node.path_var, node.out_var):
            faults.append(PlanFault(
                "PC-ATTRSCAN",
                "attribute scan value variable collides with its "
                "path/holder variable", _describe(node), stage))
    if isinstance(node, StructuralScanOp):
        produced = [node.path_var, node.out_var]
        if node.source_var in produced:
            faults.append(PlanFault(
                "PC-SCAN",
                "structural scan binds the variable it scans from",
                _describe(node), stage,
                hint="source_var must stay distinct from "
                     "path_var/out_var"))
        if node.path_var is node.out_var:
            faults.append(PlanFault(
                "PC-SCAN", "structural scan path and output variables "
                "coincide", _describe(node), stage))
    if isinstance(node, IntervalJoinOp):
        if node.probe_var in (node.out_var, node.path_var,
                              node.source_var):
            faults.append(PlanFault(
                "PC-JOIN",
                "interval-join probe variable collides with the "
                "scan's own variables", _describe(node), stage,
                hint="the probe must be bound upstream, not by the "
                     "join itself"))
        atom = node.recheck_atom
        expected = {node.out_var, node.probe_var}
        if not (isinstance(atom, Eq)
                and set(atom.free_variables()) <= expected):
            faults.append(PlanFault(
                "PC-JOIN",
                "interval-join recheck atom is not the fused "
                "out ≡ probe equality", _describe(node), stage))


def _check_sharing(plan: Operator, stage: str | None,
                   faults: list[PlanFault]) -> None:
    """SharedOp replay consistency: ids unique per node object, sane
    reference counts.  (Acyclicity is the dataflow pass's job — it
    visits the same graph anyway.)"""
    by_id: dict[int, SharedOp] = {}
    seen: set[int] = set()
    stack: list[Operator] = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, SharedOp):
            other = by_id.get(node.shared_id)
            if other is not None and other is not node:
                faults.append(PlanFault(
                    "PC-SHARED",
                    f"two distinct shared nodes carry id "
                    f"{node.shared_id}", _describe(node), stage,
                    hint="factoring must mint one wrapper per merged "
                         "subtree"))
            by_id.setdefault(node.shared_id, node)
            if node.ref_count < 1:
                faults.append(PlanFault(
                    "PC-SHARED",
                    f"shared node has ref_count {node.ref_count}",
                    _describe(node), stage))
            if isinstance(node.child, SharedOp):
                faults.append(PlanFault(
                    "PC-SHARED", "shared node directly wraps another "
                    "shared node", _describe(node), stage))
        stack.extend(node.children())


def _check_root(plan: Operator, query: Query | None,
                envs: dict[int, Env],
                stage: str | None, faults: list[PlanFault]) -> None:
    if not isinstance(plan, ProjectOp):
        faults.append(PlanFault(
            "PC-ROOT", "plan root is not a projection",
            _describe(plan), stage))
        return
    child_env = envs.get(id(plan.child), frozenset())
    unbound = [v for v in plan.head if v not in child_env]
    if unbound:
        names = ", ".join(str(v) for v in unbound)
        faults.append(PlanFault(
            "PC-HEAD",
            f"projection head variable(s) {names} are not bound by "
            "the plan", _describe(plan), stage))
    if query is not None and tuple(plan.head) != tuple(query.head):
        faults.append(PlanFault(
            "PC-HEAD",
            f"projection head {list(plan.head)} does not match the "
            f"query head {list(query.head)}", _describe(plan), stage))
    var_types = getattr(plan, "var_types", None) or {}
    if var_types:
        _check_types(plan, var_types, stage, faults)


def _check_types(plan: Operator, var_types: dict, stage: str | None,
                 faults: list[PlanFault]) -> None:
    """Replay compile-time type facts embedded in operators against the
    compiler's recorded candidate types."""
    seen: set[int] = set()
    stack: list[Operator] = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, IndexFilterOp) and node.oid_only:
            types = var_types.get(node.variable)
            if types is not None and not all(
                    isinstance(tp, ClassType) for tp in types):
                faults.append(PlanFault(
                    "PC-TYPE",
                    f"index filter on {node.variable} claims oid-only "
                    "but a candidate type is not a class",
                    _describe(node), stage,
                    hint="oid_only lets unions prune whole branches; "
                         "a non-class candidate makes that unsound"))
        stack.extend(node.children())


# -- cost-evidence checks ---------------------------------------------------


def _check_cost(plan: Operator, stats: Any, stage: str | None,
                faults: list[PlanFault]) -> None:
    """Re-validate every :class:`~repro.stats.CostEvidence` record.

    The cost stage may only *permute* a union's branches and *remove*
    branches it can prove empty — so the evidence's kept order plus its
    pruned indices must partition the original branch list, and every
    pruned entry must carry zero evidence the verifier can re-derive.
    When ``stats`` is the same snapshot generation the stage costed
    against, the posting-size bound is recomputed and must still be 0.
    """
    seen: set[int] = set()
    stack: list[Operator] = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children())
        evidence = getattr(node, "cost_evidence", None)
        if evidence is None:
            continue

        def fault(message: str, hint: str | None = None) -> None:
            faults.append(PlanFault("PC-COST", message,
                                    _describe(node), stage, hint=hint))

        if not isinstance(node, UnionOp):
            fault("cost evidence attached to a non-union operator")
            continue
        accounted = sorted(list(evidence.order)
                           + list(evidence.pruned))
        if accounted != list(range(evidence.original)):
            fault(f"kept order {list(evidence.order)} + pruned "
                  f"{sorted(evidence.pruned)} do not partition the "
                  f"{evidence.original} original branches",
                  hint="the cost stage may only permute branches and "
                       "remove provably empty ones")
            continue
        if len(node.branches) != len(evidence.order):
            fault(f"union has {len(node.branches)} branches but the "
                  f"evidence keeps {len(evidence.order)}")
            continue
        for index, (kind, detail) in sorted(evidence.pruned.items()):
            if kind != "empty_candidates":
                fault(f"pruned branch {index} carries unverifiable "
                      f"evidence kind {kind!r}",
                      hint="only posting-size zero proofs justify "
                           "static pruning")
                continue
            if (stats is not None
                    and stats.generation == evidence.generation
                    and stats.candidate_upper_bound(detail) != 0):
                fault(f"pruned branch {index}'s pattern is no longer "
                      "provably empty under the same statistics "
                      "generation")


# -- structural-index invariants --------------------------------------------


def verify_structural_index(index: Any) -> list[PlanFault]:
    """Check the pre/post encoding invariants of every built block.

    These are the facts :class:`~repro.algebra.operators.StructuralScanOp`
    and :class:`~repro.algebra.operators.IntervalJoinOp` rely on:
    subtrees are contiguous pre intervals, descendants have strictly
    smaller post ranks, and the secondary slices are sorted positions
    pointing at values of the declared class.
    """
    faults: list[PlanFault] = []
    for name, block in index.blocks.items():
        _verify_block(name, block, faults)
    return faults


def _verify_block(name: str, block: Any,
                  faults: list[PlanFault]) -> None:
    def fault(message: str) -> None:
        faults.append(PlanFault("PC-INDEX", message, f"block {name!r}"))

    n = block.size
    for label, array in (("post", block.post), ("level", block.level),
                         ("parent", block.parent), ("end", block.end),
                         ("paths", block.paths),
                         ("complete", block.complete)):
        if len(array) != n:
            fault(f"array {label} has {len(array)} entries, expected {n}")
            return
    if n == 0:
        return
    if sorted(block.post) != list(range(n)):
        fault("post ranks are not a permutation of 0..n-1")
    if block.parent[0] != -1 or block.level[0] != 0:
        fault("block origin is not a level-0, parentless root")
    for i in range(1, n):
        parent = block.parent[i]
        if not (0 <= parent < i):
            fault(f"node {i} has non-preceding parent {parent}")
            break
        if block.level[i] != block.level[parent] + 1:
            fault(f"node {i} is not one level below its parent")
            break
        if not (parent < i < block.end[parent]):
            fault(f"node {i} falls outside its parent's interval")
            break
        if block.post[i] >= block.post[parent]:
            fault(f"node {i} has post rank >= its ancestor's "
                  "(pre < post ordering violated)")
            break
        if not (i < block.end[i] <= block.end[parent]):
            fault(f"node {i}'s interval is not nested in its parent's")
            break
    for class_name, positions in block.classes.items():
        if list(positions) != sorted(set(positions)):
            fault(f"class slice {class_name!r} is not strictly sorted")
            continue
        for pre in positions:
            value = block.values[pre]
            if getattr(value, "class_name", None) != class_name:
                fault(f"class slice {class_name!r} points at a "
                      f"non-{class_name} value (pre {pre})")
                break
    for label, slices in (("oid", block.oids), ("atom", block.atoms),
                          ("attr", block.attr_steps)):
        for key, positions in slices.items():
            if list(positions) != sorted(positions):
                fault(f"{label} slice {key!r} is not sorted")
                break
