"""Interpreted functions on path values (Section 4.3, item 4).

The paper illustrates with ``P = .sections[0].subsectns[0]``:
``length(P) = 4`` (each attribute and index step counts) and
``P[0:1] = .sections[0]`` — note the *inclusive* upper bound of the
paper's projection, which :func:`path_project` reproduces.  These
functions are registered in the calculus's interpreted-function registry
and surface in O2SQL.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.paths.steps import Path


def path_length(path: Path) -> int:
    """``length(P)`` — the number of concrete steps."""
    if not isinstance(path, Path):
        raise EvaluationError(f"length() expects a path, got {path!r}")
    return len(path)


def path_project(path: Path, start: int, end: int) -> Path:
    """``P[start:end]`` with the paper's inclusive bounds.

    ``path_project(P, 0, 1)`` keeps steps 0 and 1 — for
    ``P = .sections[0].subsectns[0]`` that is ``.sections[0]``.
    """
    if not isinstance(path, Path):
        raise EvaluationError(f"projection expects a path, got {path!r}")
    if start < 0 or end < start:
        raise EvaluationError(
            f"bad projection bounds [{start}:{end}]")
    return Path(path.steps[start:end + 1])


def path_startswith(path: Path, prefix: Path) -> bool:
    """``startswith(P, Q)`` — is ``Q`` a prefix of ``P``?"""
    if not isinstance(path, Path) or not isinstance(prefix, Path):
        raise EvaluationError("startswith() expects two paths")
    return path.startswith(prefix)


def path_concat(left: Path, right: Path) -> Path:
    """``concat(P, Q)`` — path concatenation."""
    if not isinstance(left, Path) or not isinstance(right, Path):
        raise EvaluationError("concat() expects two paths")
    return left + right
