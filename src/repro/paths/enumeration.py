"""Enumeration of concrete paths from a value (Section 5.2).

``paths_from(value, instance)`` yields every ``(path, reached value)``
pair, starting with the empty path ("which possibly is the empty path",
Section 4.3).  Two semantics control how object dereferences may repeat:

* **restricted** (the paper's default) — a path never contains two
  dereferences of objects *allocated in the same class*.  This bounds the
  path length by the schema, guarantees safety and enables the
  algebraization of Section 5.4.
* **liberal** — a path never visits the same *object* twice.  Lengths are
  then data-bounded; this is the semantics the paper recommends for
  hypertext navigation.

Enumeration order is deterministic (document order of the value tree).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import EvaluationError
from repro.oodb.values import ListValue, Oid, SetValue, TupleValue
from repro.paths.steps import (
    AttrStep,
    DEREF,
    ElemStep,
    IndexStep,
    Path,
)

RESTRICTED = "restricted"
LIBERAL = "liberal"

_SEMANTICS = (RESTRICTED, LIBERAL)


def paths_from(value: object, instance=None,
               semantics: str = RESTRICTED,
               max_paths: int | None = None) -> Iterator[tuple[Path, object]]:
    """Yield ``(path, reached_value)`` for every concrete path from
    ``value`` — the valuation set of a path variable rooted there.

    ``max_paths`` guards against very large values (raises when
    exceeded); ``None`` means unbounded.
    """
    if semantics not in _SEMANTICS:
        raise EvaluationError(
            f"unknown path semantics {semantics!r}; "
            f"use one of {_SEMANTICS}")
    counter = _Counter(max_paths)
    yield from _walk(value, instance, semantics, Path.EMPTY,
                     frozenset(), counter)


class _Counter:
    __slots__ = ("limit", "count")

    def __init__(self, limit: int | None) -> None:
        self.limit = limit
        self.count = 0

    def tick(self) -> None:
        self.count += 1
        if self.limit is not None and self.count > self.limit:
            raise EvaluationError(
                f"path enumeration exceeded {self.limit} paths")


def _walk(value: object, instance, semantics: str, prefix: Path,
          visited: frozenset, counter: _Counter
          ) -> Iterator[tuple[Path, object]]:
    counter.tick()
    yield prefix, value
    if isinstance(value, TupleValue):
        for name, field in value.fields:
            yield from _walk(field, instance, semantics,
                             prefix.extended(AttrStep(name)),
                             visited, counter)
    elif isinstance(value, ListValue):
        for index, element in enumerate(value):
            yield from _walk(element, instance, semantics,
                             prefix.extended(IndexStep(index)),
                             visited, counter)
    elif isinstance(value, SetValue):
        for element in value:
            yield from _walk(element, instance, semantics,
                             prefix.extended(ElemStep(element)),
                             visited, counter)
    elif isinstance(value, Oid) and instance is not None:
        marker = value.class_name if semantics == RESTRICTED else value
        if marker in visited:
            return
        yield from _walk(instance.deref(value), instance, semantics,
                         prefix.extended(DEREF),
                         visited | {marker}, counter)


def enumerate_paths(value: object, instance=None,
                    semantics: str = RESTRICTED,
                    max_paths: int | None = None) -> list[Path]:
    """The set of concrete paths from ``value`` as a list.

    This is the valuation the paper's query
    ``my_article PATH_p`` returns, and the operand of the Q4 structural
    difference.
    """
    return [path for path, _ in paths_from(
        value, instance, semantics, max_paths)]


def path_difference(new_value: object, old_value: object, instance=None,
                    semantics: str = RESTRICTED) -> list[Path]:
    """Q4: paths present in ``new_value`` but not in ``old_value``."""
    old_paths = set(enumerate_paths(old_value, instance, semantics))
    return [path for path in enumerate_paths(new_value, instance, semantics)
            if path not in old_paths]
