"""Enumeration of concrete paths from a value (Section 5.2).

``paths_from(value, instance)`` yields every ``(path, reached value)``
pair, starting with the empty path ("which possibly is the empty path",
Section 4.3).  Two semantics control how object dereferences may repeat:

* **restricted** (the paper's default) — a path never contains two
  dereferences of objects *allocated in the same class*.  This bounds the
  path length by the schema, guarantees safety and enables the
  algebraization of Section 5.4.
* **liberal** — a path never visits the same *object* twice.  Lengths are
  then data-bounded; this is the semantics the paper recommends for
  hypertext navigation.

Enumeration order is deterministic (document order of the value tree).

The traversal itself is exposed as :func:`walk_events`, an iterative
enter/leave/blocked event stream: ``paths_from`` is its projection onto
enter events, and the structural index (:mod:`repro.structindex`) folds
the *same* stream into pre/post-order arrays — one source of truth, so
an indexed range scan enumerates exactly what a live walk would.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import EvaluationError
from repro.oodb.values import ListValue, Oid, SetValue, TupleValue
from repro.paths.steps import (
    AttrStep,
    DEREF,
    ElemStep,
    IndexStep,
    Path,
)

RESTRICTED = "restricted"
LIBERAL = "liberal"

_SEMANTICS = (RESTRICTED, LIBERAL)

#: Event kinds of :func:`walk_events`.
ENTER = "enter"
LEAVE = "leave"
BLOCKED = "blocked"


def paths_from(value: object, instance: Any = None,
               semantics: str = RESTRICTED,
               max_paths: int | None = None) -> Iterator[tuple[Path, object]]:
    """Yield ``(path, reached_value)`` for every concrete path from
    ``value`` — the valuation set of a path variable rooted there.

    ``max_paths`` guards against very large values (raises when
    exceeded); ``None`` means unbounded.
    """
    for kind, path, reached, _level in walk_events(
            value, instance, semantics, max_paths):
        if kind is ENTER:
            yield path, reached


class _Counter:
    __slots__ = ("limit", "count")

    def __init__(self, limit: int | None) -> None:
        self.limit = limit
        self.count = 0

    def tick(self) -> None:
        self.count += 1
        if self.limit is not None and self.count > self.limit:
            raise EvaluationError(
                f"path enumeration exceeded {self.limit} paths")


def walk_events(value: object, instance: Any = None,
                semantics: str = RESTRICTED,
                max_nodes: int | None = None
                ) -> Iterator[tuple[str, Path, object, int]]:
    """The depth-first traversal behind :func:`paths_from`, as a stream
    of ``(kind, path, value, level)`` events:

    * ``ENTER``   — a node is reached (one per concrete path, in
      enumeration order — the pre-order rank);
    * ``LEAVE``   — its subtree is exhausted (the post-order rank);
    * ``BLOCKED`` — an oid whose dereference the semantics suppressed
      (its marker was already on the path); the oid node itself was
      entered, the deref child is *not*.

    The traversal is iterative (explicit stack), so each event costs
    O(1) regardless of depth.
    """
    if semantics not in _SEMANTICS:
        raise EvaluationError(
            f"unknown path semantics {semantics!r}; "
            f"use one of {_SEMANTICS}")
    counter = _Counter(max_nodes)
    restricted = semantics == RESTRICTED
    stack: list[tuple] = [(ENTER, value, Path.EMPTY, frozenset(), 0)]
    while stack:
        kind, value, prefix, visited, level = stack.pop()
        if kind is not ENTER:
            yield kind, prefix, value, level
            continue
        counter.tick()
        yield ENTER, prefix, value, level
        stack.append((LEAVE, value, prefix, visited, level))
        # children are pushed in reverse so they pop in document order
        if isinstance(value, TupleValue):
            stack.extend(
                (ENTER, field, prefix.extended(AttrStep(name)),
                 visited, level + 1)
                for name, field in reversed(value.fields))
        elif isinstance(value, ListValue):
            stack.extend(
                (ENTER, element, prefix.extended(IndexStep(index)),
                 visited, level + 1)
                for index, element
                in reversed(list(enumerate(value))))
        elif isinstance(value, SetValue):
            stack.extend(
                (ENTER, element, prefix.extended(ElemStep(element)),
                 visited, level + 1)
                for element in reversed(value.items))
        elif isinstance(value, Oid) and instance is not None:
            marker = value.class_name if restricted else value
            if marker in visited:
                stack.append((BLOCKED, value, prefix, visited, level))
            else:
                stack.append(
                    (ENTER, instance.deref(value),
                     prefix.extended(DEREF), visited | {marker},
                     level + 1))


def enumerate_paths(value: object, instance: Any = None,
                    semantics: str = RESTRICTED,
                    max_paths: int | None = None) -> list[Path]:
    """The set of concrete paths from ``value`` as a list.

    This is the valuation the paper's query
    ``my_article PATH_p`` returns, and the operand of the Q4 structural
    difference.
    """
    return [path for path, _ in paths_from(
        value, instance, semantics, max_paths)]


def path_difference(new_value: object, old_value: object,
                    instance: Any = None,
                    semantics: str = RESTRICTED) -> list[Path]:
    """Q4: paths present in ``new_value`` but not in ``old_value``."""
    old_paths = set(enumerate_paths(old_value, instance, semantics))
    return [path for path in enumerate_paths(new_value, instance, semantics)
            if path not in old_paths]
