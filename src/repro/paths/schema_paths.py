"""Type-level path enumeration (the engine of Section 5.4).

For the algebraization, the compiler must find the *candidate valuations*
of path variables "by analysis of the query using schema information".
A :class:`SchemaPath` is a path skeleton over a type: attribute and
marker steps are concrete, list/set positions are wildcards, and object
boundaries are dereference steps annotated with the class crossed.

Under the restricted semantics a schema path never crosses two classes
with a common allocation class, so the enumeration is finite even for
recursive schemas.
"""

from __future__ import annotations

from typing import Iterator

from repro.oodb.schema import Schema
from repro.oodb.types import (
    AnyType,
    AtomicType,
    ClassType,
    ListType,
    SetType,
    TupleType,
    Type,
    UnionType,
)


class SchemaStep:
    """One step of a schema path."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class SchemaAttr(SchemaStep):
    """``.a`` — attribute or union-marker selection."""

    def __init__(self, name: str, is_marker: bool = False) -> None:
        self.name = name
        self.is_marker = is_marker

    def __str__(self) -> str:
        return f".{self.name}"


class SchemaIndex(SchemaStep):
    """``[*]`` — any position of a list."""

    def __str__(self) -> str:
        return "[*]"


class SchemaElem(SchemaStep):
    """``{*}`` — any element of a set."""

    def __str__(self) -> str:
        return "{*}"


class SchemaDeref(SchemaStep):
    """``->`` annotated with the class being crossed."""

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name

    def __str__(self) -> str:
        return f"->({self.class_name})"


class SchemaPath:
    """A path skeleton with the type it reaches."""

    __slots__ = ("steps", "target")

    def __init__(self, steps: tuple[SchemaStep, ...], target: Type) -> None:
        self.steps = steps
        self.target = target

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SchemaPath)
                and other.steps == self.steps
                and other.target == self.target)

    def __hash__(self) -> int:
        return hash((self.steps, self.target))

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def last_attribute(self) -> str | None:
        """The name of the final attribute step, if any."""
        if self.steps and isinstance(self.steps[-1], SchemaAttr):
            return self.steps[-1].name
        return None

    def __str__(self) -> str:
        rendered = "".join(str(s) for s in self.steps) or "ε"
        return f"{rendered} : {self.target}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"SchemaPath({self})"


def enumerate_schema_paths(schema: Schema, root_type: Type,
                           through_methods: bool = False
                           ) -> list[SchemaPath]:
    """All schema paths from ``root_type`` under the restricted semantics.

    Returns paths in a deterministic order, starting with the empty path
    at ``root_type`` itself.
    """
    return list(_walk(schema, root_type, (), frozenset()))


def _walk(schema: Schema, tp: Type, prefix: tuple[SchemaStep, ...],
          crossed: frozenset[str]) -> Iterator[SchemaPath]:
    yield SchemaPath(prefix, tp)
    if isinstance(tp, TupleType):
        for name, field in tp.fields:
            yield from _walk(schema, field,
                             prefix + (SchemaAttr(name),), crossed)
    elif isinstance(tp, UnionType):
        for marker, branch in tp.branches:
            yield from _walk(schema, branch,
                             prefix + (SchemaAttr(marker, is_marker=True),),
                             crossed)
    elif isinstance(tp, ListType):
        yield from _walk(schema, tp.element,
                         prefix + (SchemaIndex(),), crossed)
    elif isinstance(tp, SetType):
        yield from _walk(schema, tp.element,
                         prefix + (SchemaElem(),), crossed)
    elif isinstance(tp, ClassType):
        # Restricted semantics: a dereference is blocked when any class
        # that could allocate this oid was already crossed.  We approximate
        # with the declared class and its subclasses.
        candidates = schema.hierarchy.subclasses(tp.name)
        for class_name in candidates:
            if class_name in crossed:
                continue
            yield from _walk(schema, schema.structure(class_name),
                             prefix + (SchemaDeref(class_name),),
                             crossed | {class_name})
    elif isinstance(tp, (AtomicType, AnyType)):
        return


def paths_ending_with_attribute(schema: Schema, root_type: Type,
                                attribute: str) -> list[SchemaPath]:
    """Candidate valuations for ``PATH_p . attribute`` (Section 5.4).

    Every schema path whose *next* step from its target could be
    ``.attribute`` — i.e. paths reaching a tuple with that attribute or a
    union with that marker.
    """
    matches = []
    for schema_path in enumerate_schema_paths(schema, root_type):
        target = schema_path.target
        if isinstance(target, TupleType) and target.has_attribute(attribute):
            matches.append(schema_path)
        elif isinstance(target, UnionType) and target.has_marker(attribute):
            matches.append(schema_path)
    return matches
