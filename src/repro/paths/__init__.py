"""Paths as first-class citizens (Sections 4.3 and 5.2).

* :mod:`repro.paths.steps` — concrete path steps and the :class:`Path`
  value,
* :mod:`repro.paths.pathops` — the interpreted functions on paths
  (``length``, the paper's inclusive projection, prefix tests),
* :mod:`repro.paths.enumeration` — enumeration of concrete paths from a
  value under the restricted or liberal semantics,
* :mod:`repro.paths.schema_paths` — type-level path enumeration for the
  algebraization of Section 5.4.
"""

from repro.paths.enumeration import (
    BLOCKED,
    ENTER,
    LEAVE,
    LIBERAL,
    RESTRICTED,
    enumerate_paths,
    paths_from,
    walk_events,
)
from repro.paths.pathops import path_length, path_project, path_startswith
from repro.paths.steps import (
    AttrStep,
    DEREF,
    DerefStep,
    ElemStep,
    IndexStep,
    Path,
    Step,
)
from repro.paths.schema_paths import SchemaPath, enumerate_schema_paths

__all__ = [
    "AttrStep", "BLOCKED", "DEREF", "DerefStep", "ENTER", "ElemStep",
    "IndexStep", "LEAVE", "LIBERAL", "Path", "RESTRICTED", "SchemaPath",
    "Step", "enumerate_paths", "enumerate_schema_paths", "path_length",
    "path_project", "path_startswith", "paths_from", "walk_events",
]
