"""Concrete paths (Section 5.2).

A concrete path is a sequence of steps:

1. ``.a`` — attribute selection (tuples and marked unions),
2. ``[i]`` — list indexing (and, via the heterogeneous-list view of
   Section 5.1, positional access into ordered tuples),
3. ``->`` — dereferencing an object,
4. ``{v}`` — selecting the element ``v`` of a set.

:class:`Path` is an immutable, hashable value — the interpretation domain
of the new PATH sort.  Path values support the list functions the paper
gives them (Section 4.3 item 4): ``length``, projection, concatenation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import EvaluationError
from repro.oodb.values import ListValue, Oid, SetValue, TupleValue


class Step:
    """Base class of concrete path steps."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__,
                     tuple(sorted(self.__dict__.items(),
                                  key=lambda kv: kv[0]))))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class AttrStep(Step):
    """``.a`` — select attribute ``a``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return f".{self.name}"


class IndexStep(Step):
    """``[i]`` — select the i-th element of a list (or tuple field)."""

    def __init__(self, index: int) -> None:
        self.index = index

    def __str__(self) -> str:
        return f"[{self.index}]"


class DerefStep(Step):
    """``->`` — cross the object boundary."""

    def __str__(self) -> str:
        return "->"


#: The canonical dereference step (all DerefSteps are equal anyway).
DEREF = DerefStep()


class ElemStep(Step):
    """``{v}`` — select element ``v`` of a set."""

    def __init__(self, value: object) -> None:
        self.value = value

    def __hash__(self) -> int:
        return hash(("elem", self.value))

    def __str__(self) -> str:
        return f"{{{self.value!r}}}"


class Path:
    """An immutable sequence of concrete steps.

    ``str(path)`` renders the paper's notation, e.g.
    ``.sections[0].subsectns[0]``.
    """

    __slots__ = ("steps",)

    EMPTY: "Path"

    def __init__(self, steps: Iterable[Step] = ()) -> None:
        frozen = tuple(steps)
        for step in frozen:
            if not isinstance(step, Step):
                raise EvaluationError(
                    f"path step must be a Step, got {step!r}")
        object.__setattr__(self, "steps", frozen)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Path is immutable")

    # -- construction ---------------------------------------------------------

    @classmethod
    def of(cls, *parts: object) -> "Path":
        """Build a path from a friendly mixed notation.

        Strings become attribute steps, integers index steps, ``...``
        (the Ellipsis) a dereference, and Step objects pass through::

            Path.of('sections', 0, 'subsectns', 0)
        """
        steps: list[Step] = []
        for part in parts:
            if isinstance(part, Step):
                steps.append(part)
            elif isinstance(part, str):
                steps.append(AttrStep(part))
            elif isinstance(part, bool):
                raise EvaluationError("booleans are not path steps")
            elif isinstance(part, int):
                steps.append(IndexStep(part))
            elif part is Ellipsis:
                steps.append(DEREF)
            else:
                raise EvaluationError(
                    f"cannot interpret {part!r} as a path step")
        return cls(steps)

    @classmethod
    def _unsafe(cls, steps: tuple) -> "Path":
        """Wrap an already-validated step tuple without re-checking it.

        Hot-path constructor for callers slicing step tuples that came
        out of existing Path objects (the structural index materializes
        one relative path per scanned node); public construction goes
        through ``__init__``, which validates.
        """
        path = cls.__new__(cls)
        object.__setattr__(path, "steps", steps)
        return path

    def extended(self, step: Step) -> "Path":
        return Path(self.steps + (step,))

    def __add__(self, other: "Path") -> "Path":
        if not isinstance(other, Path):
            return NotImplemented
        return Path(self.steps + other.steps)

    # -- list behaviour -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: Any) -> Any:
        """Standard Python indexing/slicing (0-based, end-exclusive).

        The paper's *inclusive* projection ``P[0:1] = .sections[0]`` is
        provided by :func:`repro.paths.pathops.path_project`, which is
        what the query languages expose.
        """
        if isinstance(index, slice):
            return Path(self.steps[index])
        return self.steps[index]

    def startswith(self, prefix: "Path") -> bool:
        return self.steps[:len(prefix.steps)] == prefix.steps

    def endswith(self, suffix: "Path") -> bool:
        if not suffix.steps:
            return True
        return self.steps[-len(suffix.steps):] == suffix.steps

    # -- equality -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and other.steps == self.steps

    def __hash__(self) -> int:
        return hash(("path", self.steps))

    def __str__(self) -> str:
        if not self.steps:
            return "ε"
        return "".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"Path({self})"

    # -- application ----------------------------------------------------------

    def apply(self, value: object,
              instance: Any = None) -> object:
        """Follow the path from ``value``; raise on a step that does not
        apply.  ``instance`` is needed when the path dereferences.

        Attribute steps on a *marked* one-field tuple transparently skip
        the marker when the payload carries the attribute (the implicit
        selectors of Section 4.2); index steps on ordered tuples use the
        heterogeneous-list view of Section 5.1.
        """
        current = value
        for position, step in enumerate(self.steps):
            current = apply_step(current, step, instance,
                                 context=self._context(position))
        return current

    def _context(self, position: int) -> str:
        return f"step {position} of {self}"


Path.EMPTY = Path()


def apply_step(current: object, step: Step,
               instance: Any = None,
               context: str = "") -> object:
    """Apply one concrete step to a value."""
    suffix = f" ({context})" if context else ""
    if isinstance(step, AttrStep):
        if isinstance(current, TupleValue):
            if current.has_attribute(step.name):
                return current.get(step.name)
            # Implicit selector: skip the marker of a marked-union value.
            if current.is_marked and isinstance(current.marked_value,
                                                TupleValue):
                payload = current.marked_value
                if payload.has_attribute(step.name):
                    return payload.get(step.name)
            raise EvaluationError(
                f"no attribute {step.name!r} in tuple "
                f"[{', '.join(current.attribute_names)}]{suffix}")
        raise EvaluationError(
            f"attribute step {step} on non-tuple "
            f"{type(current).__name__}{suffix}")
    if isinstance(step, IndexStep):
        if isinstance(current, ListValue):
            if 0 <= step.index < len(current):
                return current[step.index]
            raise EvaluationError(
                f"index {step.index} out of range "
                f"(length {len(current)}){suffix}")
        if isinstance(current, TupleValue):
            # Ordered tuple as heterogeneous list (Section 5.1).
            het = current.as_heterogeneous_list()
            if 0 <= step.index < len(het):
                return het[step.index]
            raise EvaluationError(
                f"index {step.index} out of range for tuple of "
                f"{len(het)} fields{suffix}")
        raise EvaluationError(
            f"index step {step} on {type(current).__name__}{suffix}")
    if isinstance(step, DerefStep):
        if isinstance(current, Oid):
            if instance is None:
                raise EvaluationError(
                    f"dereference needs a database instance{suffix}")
            return instance.deref(current)
        raise EvaluationError(
            f"dereference on non-object {type(current).__name__}{suffix}")
    if isinstance(step, ElemStep):
        if isinstance(current, SetValue):
            if step.value in current:
                return step.value
            raise EvaluationError(
                f"value {step.value!r} not in set{suffix}")
        raise EvaluationError(
            f"set-element step on {type(current).__name__}{suffix}")
    raise EvaluationError(f"unknown step {step!r}{suffix}")
