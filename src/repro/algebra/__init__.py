"""The algebraization of the calculus (Section 5.4).

The paper sketches a two-step algebraization: (i) an algebra in the
spirit of complex-object algebras, extended with variant-based selection
over heterogeneous collections; (ii) the elimination of path and
attribute variables — "by analysis of the query using schema
information, one can find candidate valuations for the P_i and A_j", so
a query with such variables becomes a **union of queries without
attribute or path variables**.

* :mod:`repro.algebra.operators` — the operator algebra (binding
  streams),
* :mod:`repro.algebra.compile` — calculus → algebra, including the
  schema-driven variable elimination,
* :mod:`repro.algebra.optimizer` — rewrites (full-text index
  utilisation for ``contains``, selection pushdown, and the
  common-prefix factoring that turns union-of-plans trees into
  shared-work DAGs),
* :mod:`repro.algebra.execute` — plan interpreter.

The restricted path semantics is required: under the liberal semantics
the same compilation would need a transitive-closure operator (the
paper's closing remark), which this algebra intentionally lacks.
"""

from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan
from repro.algebra.operators import (
    BindOp,
    FormulaOp,
    IndexFilterOp,
    IntervalJoinOp,
    MakePathOp,
    NegationOp,
    Operator,
    ProjectOp,
    SeedOp,
    SelectOp,
    SharedOp,
    StepOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
    UnnestOp,
)
from repro.algebra.optimizer import factor_shared_prefixes, optimize

__all__ = [
    "BindOp", "FormulaOp", "IndexFilterOp", "IntervalJoinOp",
    "MakePathOp", "NegationOp", "Operator", "ProjectOp", "SeedOp",
    "SelectOp", "SharedOp", "StepOp", "StructuralAttrScanOp",
    "StructuralScanOp", "UnionOp",
    "UnnestOp", "compile_query", "execute_plan",
    "factor_shared_prefixes", "optimize",
]
