"""The operator algebra (Section 5.4).

Operators are streams of variable bindings (environments).  A plan is an
operator tree; executing it yields bindings which the final
:class:`ProjectOp` turns into the query's result set.

The algebra corresponds to a complex-object algebra with the paper's
additions:

* :class:`StepOp` — navigation steps, including *variant-based
  selection* over marked unions (the implicit selectors) and the
  heterogeneous-list view of ordered tuples;
* :class:`UnnestOp` — iteration over lists/sets (with optional position
  binding);
* :class:`MakePathOp` — reconstruction of a path variable's value from
  the compiled navigation template (so paths remain first-class in
  results);
* :class:`UnionOp` — the union of variable-free plans that a
  path/attribute variable compiles into;
* :class:`SharedOp` — a materialized subplan referenced by several
  union branches (the optimizer's common-prefix factoring turns the
  plan *tree* into a DAG; rows are computed once per execution and
  replayed to every other consumer);
* :class:`NegationOp` / :class:`FormulaOp` — boolean combination with
  (⋆)-form subplans, realised by delegating the residual formula to the
  calculus interpreter per row (the paper's "boolean combination of
  queries of the form (⋆)");
* :class:`StructuralScanOp` / :class:`IntervalJoinOp` — the structural
  index rewrite: an unbound path variable's whole union fan-out as one
  pre/post interval range scan (and, joined with a bound variable, two
  bisections) over :mod:`repro.structindex`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import CompilationError, EvaluationError
from repro.calculus.evaluator import (
    Binding,
    EvalContext,
    _auto_deref,
    _select_attribute,
    eval_term,
    satisfy,
)
from repro.calculus.terms import term_variables
from repro.oodb.values import ListValue, Oid, SetValue, TupleValue
from repro.paths.enumeration import RESTRICTED, paths_from
from repro.paths.steps import (
    AttrStep,
    DEREF,
    ElemStep,
    IndexStep,
    Path,
)


class Operator:
    """Base class of plan operators.

    ``rows`` is the public entry point: when a
    :class:`~repro.observe.profile.PlanProfiler` is installed on the
    context it meters the stream (actual row counts, elapsed time per
    node — the EXPLAIN ANALYZE numbers); otherwise the subclass stream
    is returned untouched.  Subclasses implement :meth:`_rows`.
    """

    #: Estimated output cardinality / total cost, stamped by the
    #: optimizer's cost stage (:mod:`repro.stats`); ``None`` on plans
    #: that were never costed.  ``explain_analyze`` shows ``est_rows``
    #: next to the actual row count.
    est_rows: float | None = None
    est_cost: float | None = None
    #: :class:`repro.stats.CostEvidence` on unions the cost stage
    #: reordered or pruned — the audit record the plancheck verifier's
    #: ``PC-COST`` checks re-validate.  ``None`` everywhere else.
    cost_evidence: Any = None

    def rows(self, ctx: EvalContext) -> Iterator[Binding]:
        profiler = ctx.profiler
        if profiler is None:
            return self._rows(ctx)
        return profiler.wrap(self, self._rows(ctx))

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        raise NotImplementedError

    def children(self) -> list["Operator"]:
        return []

    # -- dataflow contracts (checked statically by repro.plancheck) --------

    def consumes(self) -> frozenset:
        """Variables this operator requires *bound* in every input row.

        The static half of the operator's dataflow contract: the
        :mod:`repro.plancheck` verifier threads a binding environment
        through the plan and rejects any plan where a consumed variable
        is not produced upstream — the class of bug a broken optimizer
        rewrite (a filter pushed below its producer, a probe detached
        from its binder) introduces.
        """
        return frozenset()

    def produces(self) -> frozenset:
        """Variables this operator binds on every row it yields.

        For :class:`FormulaOp` this is an over-approximation (the
        residual formula may re-yield already-bound variables), which
        is sound for the verifier's purpose: the environment only ever
        *grows* along a plan spine, so over-approximating produces can
        never manufacture an unbound-consumption fault.
        """
        return frozenset()

    def __repr__(self) -> str:  # pragma: no cover
        return self.describe()


def _pad(indent: int) -> str:
    return "  " * indent


class SeedOp(Operator):
    """One empty binding — the start of every plan."""

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        yield {}

    def describe(self, indent: int = 0) -> str:
        return _pad(indent) + "Seed"


class BindOp(Operator):
    """Bind ``var`` to the value of a ground term; rows where the term
    does not evaluate (wrong union branch) are dropped."""

    def __init__(self, child: Operator, variable: Any,
                 term: Any) -> None:
        self.child = child
        self.variable = variable
        self.term = term

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            try:
                value = eval_term(self.term, row, ctx)
            except EvaluationError:
                continue
            if self.variable in row:
                from repro.oodb.values import equivalent
                if equivalent(row[self.variable], value):
                    yield row
                continue
            extended = dict(row)
            extended[self.variable] = value
            yield extended

    def consumes(self) -> frozenset:
        return frozenset(term_variables(self.term))

    def produces(self) -> frozenset:
        return frozenset((self.variable,))

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent) + f"Bind {self.variable} = {self.term}\n"
                + self.child.describe(indent + 1))


class UnnestOp(Operator):
    """Iterate a collection term, binding the element (and, for lists,
    optionally the position).

    ``mode`` mirrors the calculus construct being compiled, so the
    operator matches its semantics exactly:

    * ``"collection"`` — an ``∈`` atom: lists and sets only, no
      dereferencing, no tuple view;
    * ``"positions"`` — a variable ``[I]`` step: auto-dereference, then
      lists or the (marker-skipping) heterogeneous-list view of ordered
      tuples — never sets;
    * ``"set"`` — a ``{X}`` step: auto-dereference, then sets only.
    """

    def __init__(self, child: Operator, collection_term: Any,
                 element_var: Any, index_var: Any = None,
                 mode: str = "collection") -> None:
        if mode not in ("collection", "positions", "set"):
            raise CompilationError(f"unknown unnest mode {mode!r}")
        self.child = child
        self.collection_term = collection_term
        self.element_var = element_var
        self.index_var = index_var
        self.mode = mode

    def _resolve(self, collection: Any, ctx: EvalContext) -> Any:
        if self.mode == "collection":
            if isinstance(collection, (ListValue, SetValue)):
                return collection
            return None
        collection = _auto_deref(collection, ctx)
        if self.mode == "set":
            return collection if isinstance(collection, SetValue) \
                else None
        # positions
        if isinstance(collection, TupleValue):
            if (collection.is_marked
                    and isinstance(collection.marked_value, TupleValue)):
                collection = collection.marked_value
            return collection.as_heterogeneous_list()
        if isinstance(collection, ListValue):
            return collection
        return None

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            try:
                collection = eval_term(self.collection_term, row, ctx)
            except EvaluationError:
                continue
            collection = self._resolve(collection, ctx)
            if collection is None:
                continue
            for position, element in enumerate(collection):
                extended = dict(row)
                extended[self.element_var] = element
                if self.index_var is not None:
                    if self.index_var in row:
                        if row[self.index_var] != position:
                            continue
                    else:
                        extended[self.index_var] = position
                yield extended

    def consumes(self) -> frozenset:
        return frozenset(term_variables(self.collection_term))

    def produces(self) -> frozenset:
        produced = {self.element_var}
        if self.index_var is not None:
            produced.add(self.index_var)
        return frozenset(produced)

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        position = (f" @{self.index_var}" if self.index_var is not None
                    else "")
        return (_pad(indent)
                + f"Unnest {self.element_var}{position} in "
                f"{self.collection_term}\n"
                + self.child.describe(indent + 1))


class StepOp(Operator):
    """One navigation step from ``source_var`` into ``out_var``.

    ``kind`` ∈ {attr, attr_by_var, index, index_by_var, deref}.
    ``attr`` applies the implicit union selector and auto-dereferences;
    ``index`` uses the heterogeneous-list view on ordered tuples (this is
    the paper's variant-based selection over heterogeneous collections).
    """

    def __init__(self, child: Operator, source_var: Any, kind: str,
                 argument: Any, out_var: Any) -> None:
        self.child = child
        self.source_var = source_var
        self.kind = kind
        self.argument = argument
        self.out_var = out_var

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            source = row.get(self.source_var)
            if source is None and self.source_var not in row:
                continue
            for value in self._apply(source, row, ctx):
                extended = dict(row)
                extended[self.out_var] = value
                yield extended

    def _apply(self, source: Any, row: Binding,
               ctx: EvalContext) -> list:
        if self.kind == "deref":
            if isinstance(source, Oid):
                return [ctx.instance.deref(source)]
            return []
        if self.kind in ("attr", "attr_by_var"):
            attribute = (self.argument if self.kind == "attr"
                         else row.get(self.argument))
            if not isinstance(attribute, str):
                return []
            base = _auto_deref(source, ctx)
            return _select_attribute(base, attribute)
        if self.kind in ("index", "index_by_var"):
            index = (self.argument if self.kind == "index"
                     else row.get(self.argument))
            if not isinstance(index, int):
                return []
            base = _auto_deref(source, ctx)
            if isinstance(base, TupleValue):
                if (base.is_marked
                        and isinstance(base.marked_value, TupleValue)):
                    base = base.marked_value
                base = base.as_heterogeneous_list()
            if isinstance(base, ListValue) and 0 <= index < len(base):
                return [base[index]]
            return []
        raise CompilationError(f"unknown step kind {self.kind!r}")

    def consumes(self) -> frozenset:
        needed = {self.source_var}
        if self.kind in ("attr_by_var", "index_by_var"):
            needed.add(self.argument)
        return frozenset(needed)

    def produces(self) -> frozenset:
        return frozenset((self.out_var,))

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent)
                + f"Step {self.out_var} = {self.source_var}"
                f".{self.kind}({self.argument})\n"
                + self.child.describe(indent + 1))


class MakePathOp(Operator):
    """Reconstruct a path variable's first-class value.

    ``template`` is a list of instructions:
    ``('attr', name)``, ``('index', i)``, ``('index_from', var)``,
    ``('deref',)``, ``('elem_from', var)``.
    """

    def __init__(self, child: Operator, template: list,
                 out_var: Any) -> None:
        self.child = child
        self.template = template
        self.out_var = out_var

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            steps = []
            valid = True
            for instruction in self.template:
                kind = instruction[0]
                if kind == "attr":
                    steps.append(AttrStep(instruction[1]))
                elif kind == "index":
                    steps.append(IndexStep(instruction[1]))
                elif kind == "index_from":
                    position = row.get(instruction[1])
                    if not isinstance(position, int):
                        valid = False
                        break
                    steps.append(IndexStep(position))
                elif kind == "deref":
                    steps.append(DEREF)
                elif kind == "elem_from":
                    steps.append(ElemStep(row.get(instruction[1])))
                else:
                    raise CompilationError(
                        f"unknown template instruction {instruction!r}")
            if not valid:
                continue
            extended = dict(row)
            extended[self.out_var] = Path(steps)
            yield extended

    def consumes(self) -> frozenset:
        needed = set()
        for instruction in self.template:
            if instruction[0] in ("index_from", "elem_from"):
                needed.add(instruction[1])
        return frozenset(needed)

    def produces(self) -> frozenset:
        return frozenset((self.out_var,))

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        rendered = "".join(
            f".{part[1]}" if part[0] == "attr"
            else f"[{part[1]}]" if part[0] in ("index", "index_from")
            else "->" if part[0] == "deref"
            else "{...}"
            for part in self.template)
        return (_pad(indent)
                + f"MakePath {self.out_var} = {rendered or 'ε'}\n"
                + self.child.describe(indent + 1))


class SelectOp(Operator):
    """Filter by a ground atom (delegated to the calculus atom
    semantics, preserving wrong-branch-is-false)."""

    def __init__(self, child: Operator, atom: Any) -> None:
        self.child = child
        self.atom = atom

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            for _ in satisfy(self.atom, row, ctx):
                yield row
                break

    def consumes(self) -> frozenset:
        return frozenset(self.atom.free_variables())

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent) + f"Select {self.atom}\n"
                + self.child.describe(indent + 1))


class NegationOp(Operator):
    """Anti-filter: keep rows where the subformula has no witness."""

    def __init__(self, child: Operator, formula: Any) -> None:
        self.child = child
        self.formula = formula

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            if not any(True for _ in satisfy(self.formula, row, ctx)):
                yield row

    def consumes(self) -> frozenset:
        # compile.py only emits NegationOp once every free variable of
        # the negated subformula is bound (safety); an unbound variable
        # here would silently change semantics, so the verifier insists.
        return frozenset(self.formula.free_variables())

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent) + f"AntiFilter ¬({self.formula})\n"
                + self.child.describe(indent + 1))


class FormulaOp(Operator):
    """Generality fallback: satisfy an arbitrary residual formula per
    row via the calculus interpreter (used for quantifiers the purely
    algebraic operators do not cover)."""

    def __init__(self, child: Operator, formula: Any) -> None:
        self.child = child
        self.formula = formula

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            yield from satisfy(self.formula, row, ctx)

    def produces(self) -> frozenset:
        # The interpreter extends rows with witnesses for the formula's
        # free variables.  Claiming all of them is a sound
        # over-approximation for the dataflow pass: the environment only
        # ever *grows* along an operator chain, and any variable the
        # interpreter leaves unbound would already fail dynamically.
        return frozenset(self.formula.free_variables())

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent) + f"Formula {self.formula}\n"
                + self.child.describe(indent + 1))


class UnionOp(Operator):
    """Union of alternative plans (the (⋆)-elimination product).

    Before a branch runs, its index probes are consulted: a branch
    gated by an :class:`IndexFilterOp` whose candidate set is *empty*
    cannot yield a row, so the branch is skipped without touching the
    store (``algebra.branches_pruned``).  Only oid-covered filters
    participate — see :attr:`IndexFilterOp.oid_only`.
    """

    def __init__(self, branches: list[Operator]) -> None:
        if not branches:
            raise CompilationError("union of zero plans")
        self.branches = branches
        # branch -> gating IndexFilterOps, computed on first execution
        # (the plan is immutable by then; recomputation is benign)
        self._branch_probes: list[list[IndexFilterOp]] | None = None

    def _probes(self) -> list[list["IndexFilterOp"]]:
        probes = self._branch_probes
        if probes is None:
            probes = [_gating_index_filters(branch)
                      for branch in self.branches]
            self._branch_probes = probes
        return probes

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        metrics = ctx.metrics
        if metrics is not None:
            # the (⋆)-elimination fan-out of Section 5.4, per execution
            metrics.inc("algebra.union_fanout", len(self.branches))
        for branch, probes in zip(self.branches, self._probes()):
            pruned = False
            for probe in probes:
                candidates = probe.candidate_set(ctx)
                if candidates is not None and not candidates:
                    pruned = True
                    break
            if pruned:
                if metrics is not None:
                    metrics.inc("algebra.branches_pruned")
                continue
            yield from branch.rows(ctx)

    def children(self) -> list[Operator]:
        return list(self.branches)

    def describe(self, indent: int = 0) -> str:
        lines = [_pad(indent) + f"Union ({len(self.branches)} branches)"]
        for branch in self.branches:
            lines.append(branch.describe(indent + 1))
        return "\n".join(lines)


def _gating_index_filters(branch: Operator) -> list["IndexFilterOp"]:
    """The oid-covered IndexFilterOps every row of ``branch`` must pass.

    Walks the branch spine (through shared nodes) but not into nested
    unions — those prune their own branches.
    """
    found: list[IndexFilterOp] = []
    stack = [branch]
    while stack:
        node = stack.pop()
        if isinstance(node, UnionOp):
            continue
        if isinstance(node, IndexFilterOp) and node.oid_only:
            found.append(node)
        stack.extend(node.children())
    return found


class SharedOp(Operator):
    """A subplan referenced by several consumers — the DAG node the
    optimizer's common-prefix factoring introduces.

    The first consumer in an execution streams the child and records
    the rows; later consumers replay the recorded stream
    (``algebra.subplan_hits`` / ``algebra.rows_saved``).  The memo
    table is **per execution**: :func:`repro.algebra.execute.execute_plan`
    installs ``ctx.shared_memo`` for the duration of one run, so a plan
    cached across epochs (PR 2) never replays stale rows and concurrent
    runs never share state.  Replaying the same binding dicts is safe
    because operators extend rows by copying, never in place.
    """

    def __init__(self, child: Operator, ref_count: int = 1,
                 shared_id: int = 0) -> None:
        self.child = child
        #: number of consumers in the factored plan (display only)
        self.ref_count = ref_count
        #: 1-based label shown in plan renderings (``Shared[2] ×3``)
        self.shared_id = shared_id

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        memo = getattr(ctx, "shared_memo", None)
        if memo is None:
            # bare execution outside execute_plan: no memo, stream through
            yield from self.child.rows(ctx)
            return
        metrics = ctx.metrics
        cached = memo.get(id(self))
        if cached is not None:
            if metrics is not None:
                metrics.inc("algebra.subplan_hits")
                metrics.inc("algebra.rows_saved", len(cached))
            yield from cached
            return
        if metrics is not None:
            metrics.inc("algebra.subplan_misses")
        rows: list[Binding] = []
        for row in self.child.rows(ctx):
            rows.append(row)
            yield row
        # publish only complete streams: an abandoned generator leaves no
        # entry, so the next consumer recomputes instead of replaying a
        # truncated prefix
        memo[id(self)] = rows

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent)
                + f"Shared[{self.shared_id}] ×{self.ref_count}\n"
                + self.child.describe(indent + 1))


_NO_CANDIDATES = object()  # "probe not yet run" (None = "no pruning")


class IndexFilterOp(Operator):
    """Optimizer product: prune rows whose variable cannot satisfy a
    ``contains`` pattern, using the full-text index, then re-check
    exactly.

    The candidate set is probed once per plan object and memoized —
    sound because a plan never outlives its compilation epoch: the plan
    cache recompiles after any data change, so a fresh plan re-probes
    the (incrementally maintained) index.

    ``oid_only`` records a compile-time fact: every value the filtered
    variable can bind is an oid (all candidate types are classes).
    Oids are exactly what the index covers, so under ``oid_only`` an
    *empty* candidate set means the filter passes nothing — which lets
    :class:`UnionOp` skip the whole branch before it runs.
    """

    def __init__(self, child: Operator, variable: Any, pattern: Any,
                 recheck_atom: Any, oid_only: bool = False) -> None:
        self.child = child
        self.variable = variable
        self.pattern = pattern
        self.recheck_atom = recheck_atom
        self.oid_only = oid_only
        self._candidates = _NO_CANDIDATES

    def candidate_set(self, ctx: EvalContext) -> Any:
        """The memoized index probe (``None`` = no index or no pruning
        possible; see :meth:`repro.text.TextIndex.candidates`)."""
        index = getattr(ctx, "text_index", None)
        if index is None:
            return None
        if self._candidates is _NO_CANDIDATES:
            self._candidates = index.candidates(self.pattern)
        return self._candidates

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        metrics = ctx.metrics
        candidates = self.candidate_set(ctx)
        if getattr(ctx, "text_index", None) is None:
            # no index available: behave like a plain select
            for row in self.child.rows(ctx):
                if metrics is not None:
                    metrics.inc("algebra.contains_rechecks")
                for _ in satisfy(self.recheck_atom, row, ctx):
                    yield row
                    break
            return
        for row in self.child.rows(ctx):
            value = row.get(self.variable)
            if candidates is not None and isinstance(value, Oid):
                if value not in candidates:
                    if metrics is not None:
                        metrics.inc("algebra.index_pruned")
                    continue
            if metrics is not None:
                metrics.inc("algebra.contains_rechecks")
            for _ in satisfy(self.recheck_atom, row, ctx):
                yield row
                break

    def consumes(self) -> frozenset:
        return frozenset({self.variable}
                         | set(self.recheck_atom.free_variables()))

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent)
                + f"IndexFilter {self.variable} contains {self.pattern}\n"
                + self.child.describe(indent + 1))


class StructuralScanOp(Operator):
    """Valuate an unbound path variable by one structural range scan.

    Replaces the whole union-of-plans fan-out rooted at ``source_var``:
    for each input row, the valuation of ``path_var`` is the set of
    concrete paths from the row's source value, and ``out_var`` the
    value each path reaches.  When the structural index
    (:mod:`repro.structindex`) holds a *complete* occurrence of the
    source, that set is the contiguous pre range of the occurrence's
    subtree (``structindex.range_scans``); otherwise the operator falls
    back to the live walk the calculus itself uses
    (``structindex.fallback_walks``) — identical pairs either way, so
    the rewrite is an execution-strategy change only.
    """

    def __init__(self, child: Operator, source_var: Any,
                 path_var: Any, out_var: Any) -> None:
        self.child = child
        self.source_var = source_var
        self.path_var = path_var
        self.out_var = out_var

    def _pairs(self, source: Any, ctx: EvalContext) -> Any:
        index = getattr(ctx, "struct_index", None)
        if index is not None and ctx.path_semantics == RESTRICTED:
            located = index.locate(source)
            if located is not None:
                block, pre = located
                if ctx.metrics is not None:
                    ctx.metrics.inc("structindex.range_scans")
                    ctx.metrics.inc("structindex.nodes_scanned",
                                    block.subtree_size(pre))
                return block.relative_pairs(pre, ctx.max_paths)
            if ctx.metrics is not None:
                ctx.metrics.inc("structindex.fallback_walks")
        return paths_from(source, ctx.instance, ctx.path_semantics,
                          ctx.max_paths)

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        for row in self.child.rows(ctx):
            source = row.get(self.source_var)
            if source is None and self.source_var not in row:
                continue
            for path, value in self._pairs(source, ctx):
                extended = dict(row)
                extended[self.path_var] = path
                extended[self.out_var] = value
                yield extended

    def consumes(self) -> frozenset:
        return frozenset((self.source_var,))

    def produces(self) -> frozenset:
        return frozenset((self.path_var, self.out_var))

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent)
                + f"StructuralScan {self.path_var}, {self.out_var} "
                f"⇐ subtree({self.source_var})\n"
                + self.child.describe(indent + 1))


class StructuralAttrScanOp(StructuralScanOp):
    """A structural scan fused with the attribute selection that
    follows it — the accelerator's real workhorse.

    ``PATH_p.title(t)`` does not need to enumerate the subtree and try
    ``.title`` on every node: the block's per-name AttrStep slice knows
    exactly where ``title`` attributes live, and
    :meth:`~repro.structindex.Block.attr_candidates` widens those
    positions to every holder a selection can reach (auto-dereference
    chains, marked unions, semantics-blocked oids).  Each candidate is
    then put through the *same* selection logic as :class:`StepOp`
    (``_auto_deref`` + ``_select_attribute``), so the fusion changes
    only which nodes are tried, never what a trial means.

    ``attr`` is a fixed attribute name; alternatively ``attr_var`` is
    an unbound attribute variable (the Section-5.4 fan-out over every
    candidate name), bound per row to the name that matched.  Binds
    ``path_var`` (path to the holder), ``out_var`` (the holder) and
    ``value_var`` (the selected value).  Sources without a usable
    occurrence fall back to the live walk, identically filtered.
    """

    def __init__(self, child: Operator, source_var: Any,
                 path_var: Any, out_var: Any, attr: Any,
                 attr_var: Any, value_var: Any) -> None:
        super().__init__(child, source_var, path_var, out_var)
        self.attr = attr
        self.attr_var = attr_var
        self.value_var = value_var

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        index = getattr(ctx, "struct_index", None)
        usable = index is not None and ctx.path_semantics == RESTRICTED
        metrics = ctx.metrics
        for row in self.child.rows(ctx):
            source = row.get(self.source_var)
            if source is None and self.source_var not in row:
                continue
            located = index.locate(source) if usable else None
            if located is not None:
                block, pre = located
                if (ctx.max_paths is None
                        or block.subtree_size(pre) <= ctx.max_paths):
                    if metrics is not None:
                        metrics.inc("structindex.range_scans")
                    depth = len(block.paths[pre].steps)
                    candidates = block.attr_candidates(pre, self.attr)
                    if metrics is not None:
                        metrics.inc("structindex.nodes_scanned",
                                    len(candidates))
                    for position in candidates:
                        path = Path._unsafe(
                            block.paths[position].steps[depth:])
                        yield from self._emit(
                            row, path, block.values[position], ctx)
                    continue
                # subtree larger than max_paths: only the live walk
                # reproduces the enumeration-limit error contract
            if usable and metrics is not None:
                metrics.inc("structindex.fallback_walks")
            for path, node in paths_from(source, ctx.instance,
                                         ctx.path_semantics,
                                         ctx.max_paths):
                yield from self._emit(row, path, node, ctx)

    def _emit(self, row: Binding, path: Any, node: Any,
              ctx: EvalContext) -> Iterator[Binding]:
        base = _auto_deref(node, ctx)
        if self.attr is not None:
            names = (self.attr,)
        else:
            if not isinstance(base, TupleValue):
                return
            names = [name for name, _ in base.fields]
            if (base.is_marked
                    and isinstance(base.marked_value, TupleValue)):
                for name, _ in base.marked_value.fields:
                    if name not in names:
                        names.append(name)
        for name in names:
            for value in _select_attribute(base, name):
                extended = dict(row)
                extended[self.path_var] = path
                extended[self.out_var] = node
                if self.attr_var is not None:
                    extended[self.attr_var] = name
                extended[self.value_var] = value
                yield extended

    def produces(self) -> frozenset:
        produced = {self.path_var, self.out_var, self.value_var}
        if self.attr_var is not None:
            produced.add(self.attr_var)
        return frozenset(produced)

    def describe(self, indent: int = 0) -> str:
        selector = (f".{self.attr}" if self.attr is not None
                    else f".{self.attr_var}")
        return (_pad(indent)
                + f"StructuralAttrScan {self.path_var}, {self.out_var}"
                f"{selector} ⇒ {self.value_var} "
                f"⇐ subtree({self.source_var})\n"
                + self.child.describe(indent + 1))


class IntervalJoinOp(Operator):
    """A structural scan whose output is equated with an already-bound
    variable — the ancestor/descendant interval join.

    Fuses ``Select (out ≡ probe)`` into the scan: instead of
    enumerating the subtree and filtering, probe the block's secondary
    slice for the row's ``probe_var`` value and bisect its (pre-sorted)
    positions into the subtree interval
    (``structindex.interval_probes`` / ``structindex.interval_hits``).
    Probes outside the slices' equality domain (collections) and
    sources without a complete occurrence fall back to scan + the exact
    recheck atom, preserving ``≡`` semantics bit-for-bit.
    """

    def __init__(self, child: Operator, source_var: Any,
                 path_var: Any, out_var: Any, probe_var: Any,
                 recheck_atom: Any) -> None:
        self.child = child
        self.source_var = source_var
        self.path_var = path_var
        self.out_var = out_var
        self.probe_var = probe_var
        self.recheck_atom = recheck_atom

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        index = getattr(ctx, "struct_index", None)
        usable = index is not None and ctx.path_semantics == RESTRICTED
        metrics = ctx.metrics
        for row in self.child.rows(ctx):
            source = row.get(self.source_var)
            if source is None and self.source_var not in row:
                continue
            matches = None
            if usable and self.probe_var in row:
                located = index.locate(source)
                if located is not None:
                    block, pre = located
                    matches = block.matches_in(pre, row[self.probe_var])
            if matches is not None:
                if metrics is not None:
                    metrics.inc("structindex.interval_probes")
                    metrics.inc("structindex.interval_hits",
                                len(matches))
                for path, value in matches:
                    extended = dict(row)
                    extended[self.path_var] = path
                    extended[self.out_var] = value
                    yield extended
                continue
            # fallback: full scan + exact atom recheck (= SelectOp over
            # StructuralScanOp, which itself falls back to the live walk)
            if usable and metrics is not None:
                metrics.inc("structindex.fallback_walks")
            for path, value in paths_from(
                    source, ctx.instance, ctx.path_semantics,
                    ctx.max_paths):
                extended = dict(row)
                extended[self.path_var] = path
                extended[self.out_var] = value
                for _ in satisfy(self.recheck_atom, extended, ctx):
                    yield extended
                    break

    def consumes(self) -> frozenset:
        return frozenset((self.source_var, self.probe_var))

    def produces(self) -> frozenset:
        return frozenset((self.path_var, self.out_var))

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        return (_pad(indent)
                + f"IntervalJoin {self.out_var} ≡ {self.probe_var} "
                f"in subtree({self.source_var}), path {self.path_var}\n"
                + self.child.describe(indent + 1))


class ProjectOp(Operator):
    """Final projection/deduplication on the head variables."""

    def __init__(self, child: Operator, head: list) -> None:
        self.child = child
        self.head = list(head)

    def _rows(self, ctx: EvalContext) -> Iterator[Binding]:
        seen: set = set()
        for row in self.child.rows(ctx):
            projected = {variable: row[variable] for variable in self.head
                         if variable in row}
            if len(projected) != len(self.head):
                continue
            key = tuple(repr(projected[variable])
                        for variable in self.head)
            if key not in seen:
                seen.add(key)
                yield projected

    def consumes(self) -> frozenset:
        return frozenset(self.head)

    def children(self) -> list[Operator]:
        return [self.child]

    def describe(self, indent: int = 0) -> str:
        names = ", ".join(str(v) for v in self.head)
        return (_pad(indent) + f"Project [{names}]\n"
                + self.child.describe(indent + 1))
