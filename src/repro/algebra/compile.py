"""Calculus → algebra compilation (Section 5.4).

The compiler turns a range-restricted calculus query into an operator
plan.  The distinguishing move is the treatment of path and attribute
variables: "by analysis of the query using schema information, one can
find candidate valuations for the P_i and A_j.  Therefore, one can
transform the query into a union of queries with no attribute or path
variables.  This may result in introducing new variables to quantify
over the elements of a set or a list."

Concretely, each path predicate is compiled against a *frontier* of
(plan, current variable, candidate types):

* ground selections/indexings/dereferences become :class:`StepOp`s,
* variable indexings become :class:`UnnestOp`s (the "new variables" the
  paper mentions),
* an attribute variable fans the frontier out over every attribute its
  candidate types carry, binding the variable to the chosen constant,
* a path variable fans out over every schema path from the current
  candidate types, emitting the step chain plus a :class:`MakePathOp`
  that reconstructs the first-class path value.

Sub-formulas outside the conjunctive (⋆) core (negation, disjunction,
quantifiers) compile to the boolean-combination operators; anything the
algebra does not model natively falls back to a per-row
:class:`FormulaOp` — the compilation stays complete.

This compilation is only sound under the **restricted** path semantics;
compiling a liberal-semantics query raises
:class:`~repro.errors.CompilationError` (the paper: the liberal setting
"should include some form of transitive closure/fixpoint operator").
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.calculus.evaluator import EvalContext
from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Formula,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
    Subset,
)
from repro.calculus.inference import (
    _attr_targets,
    _deref_type,
    _term_type,
)
from repro.calculus.terms import (
    AttName,
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    Index,
    PathTerm,
    PathVar,
    Sel,
    SetBind,
    term_variables,
)
from repro.oodb.schema import Schema
from repro.oodb.types import ListType, SetType, TupleType, Type, UnionType
from repro.paths.enumeration import RESTRICTED
from repro.paths.schema_paths import (
    SchemaAttr,
    SchemaDeref,
    SchemaElem,
    SchemaIndex,
    enumerate_schema_paths,
)
from repro.algebra.operators import (
    BindOp,
    FormulaOp,
    MakePathOp,
    NegationOp,
    Operator,
    ProjectOp,
    SeedOp,
    SelectOp,
    StepOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
    UnnestOp,
)


def compile_query(query: Query, schema: Schema,
                  ctx: EvalContext | None = None,
                  path_semantics: str | None = None) -> ProjectOp:
    """Compile a calculus query to an executable plan.

    The path-semantics mode may be given directly (the plan-cache path
    does, so compiled plans never reference a mutable evaluation
    context) or read off ``ctx`` for compatibility.
    """
    if path_semantics is None and ctx is not None:
        path_semantics = ctx.path_semantics
    if path_semantics is not None and path_semantics != RESTRICTED:
        raise CompilationError(
            "the algebraization requires the restricted path semantics; "
            "the liberal semantics would need a transitive-closure "
            "operator (Section 5.4)")
    compiler = _Compiler(schema)
    formula = query.formula
    # unwrap top-level existentials: the projection removes them anyway
    while isinstance(formula, Exists):
        formula = formula.body
    plan = compiler.compile_formula(SeedOp(), formula, set())
    project = ProjectOp(plan, list(query.head))
    # candidate types per variable, for type-aware optimizer rewrites
    # (e.g. the oid-only pruning flag on index filters)
    project.var_types = dict(compiler.candidates)
    return project


class _Compiler:
    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.candidates: dict = {}   # var -> [Type] (inference-style)
        self._fresh = 0
        #: when set, unbound path variables compile to StructuralScanOp
        #: instead of the union-of-plans fan-out (Section 5.4)
        self.structural = False

    def fresh_var(self, stem: str = "nav") -> DataVar:
        self._fresh += 1
        return DataVar(f"_{stem}{self._fresh}")

    # -- formulas ----------------------------------------------------------

    def compile_formula(self, plan: Operator, formula: Formula,
                        bound: set) -> Operator:
        if isinstance(formula, And):
            return self._compile_and(plan, list(formula.conjuncts), bound)
        return self._compile_conjunct(plan, formula, bound)

    def _compile_and(self, plan: Operator, conjuncts: list[Formula],
                     bound: set) -> Operator:
        pending = list(conjuncts)
        while pending:
            progressed = False
            for position, conjunct in enumerate(pending):
                if self._ready(conjunct, bound):
                    plan = self._compile_conjunct(plan, conjunct, bound)
                    del pending[position]
                    progressed = True
                    break
            if not progressed:
                raise CompilationError(
                    "conjunction is not range-restricted: "
                    + "; ".join(str(c) for c in pending))
        return plan

    def _ready(self, conjunct: Formula, bound: set) -> bool:
        if isinstance(conjunct, PathAtom):
            return all(v in bound
                       for v in term_variables(conjunct.root))
        if isinstance(conjunct, Eq):
            left = [v for v in term_variables(conjunct.left)
                    if v not in bound]
            right = [v for v in term_variables(conjunct.right)
                     if v not in bound]
            if not left and not right:
                return True
            if not left and isinstance(conjunct.right,
                                       (DataVar, PathVar, AttVar)):
                return True
            if not right and isinstance(conjunct.left,
                                        (DataVar, PathVar, AttVar)):
                return True
            return False
        if isinstance(conjunct, In):
            return all(v in bound
                       for v in term_variables(conjunct.collection))
        if isinstance(conjunct, (Pred, Subset, Not)):
            return all(v in bound for v in conjunct.free_variables())
        if isinstance(conjunct, (Or, Exists, Forall)):
            return True  # handled recursively / by fallback
        return all(v in bound for v in conjunct.free_variables())

    def _compile_conjunct(self, plan: Operator, conjunct: Formula,
                          bound: set) -> Operator:
        if isinstance(conjunct, PathAtom):
            return self._compile_path_atom(plan, conjunct, bound)
        if isinstance(conjunct, Eq):
            return self._compile_eq(plan, conjunct, bound)
        if isinstance(conjunct, In):
            return self._compile_in(plan, conjunct, bound)
        if isinstance(conjunct, (Pred, Subset)):
            return SelectOp(plan, conjunct)
        if isinstance(conjunct, Not):
            return NegationOp(plan, conjunct.child)
        if isinstance(conjunct, Or):
            branches = []
            branch_bounds = []
            for disjunct in conjunct.disjuncts:
                branch_bound = set(bound)
                branches.append(self.compile_formula(
                    plan, disjunct, branch_bound))
                branch_bounds.append(branch_bound)
            shared = set.intersection(*branch_bounds) if branch_bounds \
                else set(bound)
            bound |= shared
            return UnionOp(branches)
        if isinstance(conjunct, Exists):
            inner_bound = set(bound)
            plan = self.compile_formula(plan, conjunct.body, inner_bound)
            bound |= inner_bound
            return plan
        # Forall and anything else: complete fallback
        return FormulaOp(plan, conjunct)

    # -- simple atoms ---------------------------------------------------------

    def _compile_eq(self, plan: Operator, atom: Eq,
                    bound: set) -> Operator:
        left_unbound = [v for v in term_variables(atom.left)
                        if v not in bound]
        right_unbound = [v for v in term_variables(atom.right)
                         if v not in bound]
        if not left_unbound and not right_unbound:
            return SelectOp(plan, atom)
        if not right_unbound and isinstance(atom.left,
                                            (DataVar, PathVar, AttVar)):
            variable, term = atom.left, atom.right
        elif not left_unbound and isinstance(atom.right,
                                             (DataVar, PathVar, AttVar)):
            variable, term = atom.right, atom.left
        else:
            raise CompilationError(f"cannot compile equality {atom}")
        bound.add(variable)
        inferred = _term_type(term, self.schema, self.candidates)
        if inferred is not None and isinstance(variable, DataVar):
            self.candidates.setdefault(variable, []).append(inferred)
        return BindOp(plan, variable, term)

    def _compile_in(self, plan: Operator, atom: In,
                    bound: set) -> Operator:
        element_unbound = [v for v in term_variables(atom.element)
                           if v not in bound]
        if not element_unbound:
            return SelectOp(plan, atom)
        if not isinstance(atom.element, DataVar):
            raise CompilationError(
                f"membership element pattern unsupported: {atom}")
        bound.add(atom.element)
        collection_type = _term_type(
            atom.collection, self.schema, self.candidates)
        element_types = []
        if isinstance(collection_type, (ListType, SetType)):
            element_types.append(collection_type.element)
        elif isinstance(collection_type, UnionType):
            for _, branch in collection_type.branches:
                if isinstance(branch, (ListType, SetType)):
                    element_types.append(branch.element)
        if element_types:
            self.candidates.setdefault(
                atom.element, []).extend(element_types)
        return UnnestOp(plan, atom.collection, atom.element,
                        mode="collection")

    # -- path predicates ------------------------------------------------------

    def _compile_path_atom(self, plan: Operator, atom: PathAtom,
                           bound: set) -> Operator:
        root_types = self._types_of_term(atom.root)
        if root_types is None:
            # untypable root: stay complete via the interpreter
            for variable in atom.path.variables():
                bound.add(variable)
            return FormulaOp(plan, atom)
        start = self.fresh_var()
        plan = BindOp(plan, start, atom.root)
        scannable = any(isinstance(component, PathVar)
                        and component not in bound
                        for component in atom.path.components)
        result = self._expand_path(plan, start, root_types, atom, bound)
        if scannable:
            # Compile the structural-index strategy as well, over the
            # *same* base plan and user-variable objects: the optimizer
            # swaps it in (``optimize(..., structural=True)``) without
            # disturbing bindings the rest of the formula references.
            previous = self.structural
            self.structural = True
            try:
                alternative = self._expand_path(
                    plan, start, root_types, atom, bound)
            finally:
                self.structural = previous
            if alternative is not result:
                result.structural_alternative = alternative
        for variable in atom.path.variables():
            bound.add(variable)
        return result

    def _expand_path(self, plan: Operator, start: DataVar,
                     root_types: list[Type],
                     atom: PathAtom, bound: set) -> Operator:
        # Each frontier entry carries its own bound-variable set: a
        # variable bound in one union branch must be bound afresh in the
        # others (it is the same logical variable, realised per branch).
        frontier: list[tuple[Operator, DataVar, list[Type], set]] = [
            (plan, start, root_types, set(bound))]
        for component in atom.path.components:
            frontier = self._advance(frontier, component)
            if not frontier:
                break
        if not frontier:
            # statically impossible: an always-empty plan
            return SelectOp(plan, Eq(Const(0), Const(1)))
        if len(frontier) == 1:
            return frontier[0][0]
        return UnionOp([entry[0] for entry in frontier])


    def _types_of_term(self, term: object) -> list[Type] | None:
        inferred = _term_type(term, self.schema, self.candidates)
        if inferred is None:
            return None
        if isinstance(inferred, UnionType) and all(
                marker.startswith("alpha") for marker in inferred.markers):
            return [branch for _, branch in inferred.branches]
        return [inferred]

    def _advance(self, frontier: list, component: object) -> list:
        advanced = []
        for plan, current, types, branch_bound in frontier:
            advanced.extend(
                self._advance_entry(plan, current, types, component,
                                    branch_bound))
        return advanced

    def _advance_entry(self, plan: Operator, current: DataVar,
                       types: list[Type], component: object,
                       bound: set) -> list:
        if isinstance(component, Sel):
            return self._advance_sel(plan, current, types, component,
                                     bound)
        if isinstance(component, Index):
            return self._advance_index(plan, current, types, component,
                                       bound)
        if isinstance(component, Deref):
            out = self.fresh_var()
            structures = []
            for tp in types:
                structures.extend(_deref_type(tp, self.schema))
            return [(StepOp(plan, current, "deref", None, out), out,
                     _dedup(structures), bound)]
        if isinstance(component, Bind):
            variable = component.variable
            if variable in bound:
                return [(SelectOp(plan, Eq(variable, current)),
                         current, types, bound)]
            self.candidates.setdefault(variable, []).extend(types)
            return [(BindOp(plan, variable, current), variable, types,
                     bound | {variable})]
        if isinstance(component, SetBind):
            variable = component.variable
            element_types = []
            for tp in types:
                for base in _deref_type(tp, self.schema):
                    if isinstance(base, SetType):
                        element_types.append(base.element)
            self.candidates.setdefault(
                variable, []).extend(element_types)
            return [(UnnestOp(plan, current, variable, mode="set"),
                     variable, _dedup(element_types),
                     bound | {variable})]
        if isinstance(component, PathVar):
            return self._advance_path_var(plan, current, types,
                                          component, bound)
        raise CompilationError(f"unknown path component {component!r}")

    def _advance_sel(self, plan: Operator, current: DataVar,
                     types: list[Type], component: Sel,
                     bound: set) -> list:
        attribute = component.attribute
        if (self.structural and isinstance(plan, StructuralScanOp)
                and not isinstance(plan, StructuralAttrScanOp)
                and current is plan.out_var):
            fused = self._fuse_scan_sel(plan, types, component, bound)
            if fused is not None:
                return fused
        if isinstance(attribute, AttName):
            out = self.fresh_var()
            targets = []
            for tp in types:
                for base in _deref_type(tp, self.schema):
                    targets.extend(_attr_targets(base, attribute.name))
            if not targets:
                return []
            return [(StepOp(plan, current, "attr", attribute.name, out),
                     out, _dedup(targets), bound)]
        # attribute variable
        if attribute in bound:
            out = self.fresh_var()
            targets = []
            for tp in types:
                for base in _deref_type(tp, self.schema):
                    for _, target in _all_attrs(base):
                        targets.append(target)
            return [(StepOp(plan, current, "attr_by_var", attribute,
                            out), out, _dedup(targets), bound)]
        # fan out over every candidate attribute (Section 5.4)
        names: dict[str, list[Type]] = {}
        for tp in types:
            for base in _deref_type(tp, self.schema):
                for name, target in _all_attrs(base):
                    names.setdefault(name, []).append(target)
        entries = []
        for name in sorted(names):
            out = self.fresh_var()
            branch = StepOp(plan, current, "attr", name, out)
            branch = BindOp(branch, attribute, Const(name))
            entries.append((branch, out, _dedup(names[name]),
                            bound | {attribute}))
        return entries

    def _fuse_scan_sel(self, scan: StructuralScanOp,
                       types: list[Type],
                       component: Sel, bound: set) -> list | None:
        """Fuse a selection that directly follows a structural scan
        into one :class:`StructuralAttrScanOp` — the scan's AttrStep
        slices enumerate exactly the holders that can match, so the
        plan never materialises the subtree-then-filter intermediate.
        Returns ``None`` when the selection has no fused form (an
        already-bound attribute variable)."""
        attribute = component.attribute
        if isinstance(attribute, AttName):
            targets = []
            for tp in types:
                for base in _deref_type(tp, self.schema):
                    targets.extend(_attr_targets(base, attribute.name))
            if not targets:
                return []
            out = self.fresh_var()
            return [(StructuralAttrScanOp(
                scan.child, scan.source_var, scan.path_var,
                scan.out_var, attribute.name, None, out),
                out, _dedup(targets), bound)]
        if attribute in bound:
            return None
        # unbound attribute variable: one fused scan replaces the whole
        # fan-out over candidate names; the variable is bound per row
        names: dict[str, list[Type]] = {}
        for tp in types:
            for base in _deref_type(tp, self.schema):
                for name, target in _all_attrs(base):
                    names.setdefault(name, []).append(target)
        if not names:
            return []
        out = self.fresh_var()
        targets = [target for group in names.values()
                   for target in group]
        return [(StructuralAttrScanOp(
            scan.child, scan.source_var, scan.path_var, scan.out_var,
            None, attribute, out),
            out, _dedup(targets), bound | {attribute})]

    def _advance_index(self, plan: Operator, current: DataVar,
                       types: list[Type], component: Index,
                       bound: set) -> list:
        element_types = []
        for tp in types:
            for base in _deref_type(tp, self.schema):
                if isinstance(base, ListType):
                    element_types.append(base.element)
                elif isinstance(base, TupleType):
                    element_types.extend(
                        TupleType([(n, f)]) for n, f in base.fields)
                elif isinstance(base, UnionType):
                    for marker, branch in base.branches:
                        if isinstance(branch, TupleType):
                            element_types.extend(
                                TupleType([(n, f)])
                                for n, f in branch.fields)
                        else:
                            element_types.append(
                                TupleType([(marker, branch)]))
        if not element_types:
            return []
        element_types = _dedup(element_types)
        if isinstance(component.index, int):
            out = self.fresh_var()
            return [(StepOp(plan, current, "index", component.index,
                            out), out, element_types, bound)]
        variable = component.index
        if variable in bound:
            out = self.fresh_var()
            return [(StepOp(plan, current, "index_by_var", variable,
                            out), out, element_types, bound)]
        out = self.fresh_var()
        return [(UnnestOp(plan, current, out, index_var=variable,
                          mode="positions"), out,
                 element_types, bound | {variable})]

    def _advance_path_var(self, plan: Operator, current: DataVar,
                          types: list[Type],
                          component: PathVar, bound: set) -> list:
        if component in bound:
            # a re-used path variable: apply it generically at runtime
            out = self.fresh_var()
            residual = PathAtom(current, PathTerm([component,
                                                   Bind(out)]))
            return [(FormulaOp(plan, residual), out, [], bound)]
        if self.structural:
            # one range scan replaces the whole fan-out: the scan binds
            # the path variable and its endpoint directly, typed by the
            # union of every schema path's target (the scan enumerates
            # exactly those endpoints at runtime)
            targets = []
            for tp in types:
                for schema_path in enumerate_schema_paths(
                        self.schema, tp):
                    targets.append(schema_path.target)
            out = self.fresh_var("node")
            return [(StructuralScanOp(plan, current, component, out),
                     out, _dedup(targets), bound | {component})]
        # Candidate valuations in enumeration order, deduplicated at the
        # historical one-branch-per-(steps, target) granularity.
        ordered: list = []
        seen_signatures: set = set()
        for tp in types:
            for schema_path in enumerate_schema_paths(self.schema, tp):
                rendered = tuple(str(s) for s in schema_path.steps)
                signature = (rendered, schema_path.target)
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                ordered.append((schema_path, rendered))
        # Candidate paths sharing a prefix share its *operators and
        # fresh variables*: the chains are built over a step trie, so
        # the branches of the resulting UnionOp already form a DAG and
        # the optimizer's factoring pass can merge the common prefixes
        # into SharedOp nodes instead of re-walking them per branch.
        trie: dict[tuple, tuple] = {(): (plan, current, [])}
        leaves: dict[tuple, MakePathOp] = {}
        entries = []
        for schema_path, rendered in ordered:
            prefix: tuple = ()
            for step, step_key in zip(schema_path.steps, rendered):
                key = prefix + (step_key,)
                if key not in trie:
                    parent, cursor, template = trie[prefix]
                    out = self.fresh_var()
                    if isinstance(step, SchemaAttr):
                        node = StepOp(parent, cursor, "attr",
                                      step.name, out)
                        added = ("attr", step.name)
                    elif isinstance(step, SchemaIndex):
                        position = self.fresh_var("pos")
                        node = UnnestOp(parent, cursor, out,
                                        index_var=position,
                                        mode="positions")
                        added = ("index_from", position)
                    elif isinstance(step, SchemaElem):
                        node = UnnestOp(parent, cursor, out, mode="set")
                        added = ("elem_from", out)
                    elif isinstance(step, SchemaDeref):
                        node = StepOp(parent, cursor, "deref", None, out)
                        added = ("deref",)
                    else:  # pragma: no cover
                        raise CompilationError(
                            f"unknown schema step {step!r}")
                    trie[key] = (node, out, template + [added])
                prefix = key
            branch_plan, cursor, template = trie[prefix]
            leaf = leaves.get(prefix)
            if leaf is None:
                leaf = MakePathOp(branch_plan, list(template), component)
                leaves[prefix] = leaf
            entries.append((leaf, cursor, [schema_path.target],
                            bound | {component}))
        return entries


def _all_attrs(tp: Type) -> list[tuple[str, Type]]:
    if isinstance(tp, TupleType):
        return list(tp.fields)
    if isinstance(tp, UnionType):
        pairs = list(tp.branches)
        # implicit selectors: attributes inside tuple branches
        for _, branch in tp.branches:
            if isinstance(branch, TupleType):
                pairs.extend(branch.fields)
        return pairs
    return []


def _dedup(types: list[Type]) -> list[Type]:
    unique: list[Type] = []
    for tp in types:
        if tp not in unique:
            unique.append(tp)
    return unique
