"""Plan execution."""

from __future__ import annotations

from typing import Iterator

from repro.errors import SafetyError
from repro.calculus.evaluator import EvalContext
from repro.oodb.values import SetValue, TupleValue
from repro.algebra.operators import Operator, ProjectOp


def execute_plan(plan: ProjectOp, ctx: EvalContext) -> SetValue:
    """Run a compiled plan; the result shape matches
    :func:`repro.calculus.evaluator.evaluate_query`.

    The call owns the lifetime of the shared-subplan memo: a factored
    (DAG-shaped) plan computes each :class:`SharedOp` stream once per
    ``execute_plan`` call, and the memo is dropped afterwards so cached
    plans re-read current data on their next run.
    """
    if not isinstance(plan, ProjectOp):
        raise SafetyError("a plan must be rooted at a ProjectOp")
    head = plan.head
    results = []
    seen: set = set()
    unhashable: list = []
    # nested execute_plan calls (a FormulaOp falling back into a
    # sub-plan) reuse the outer run's memo
    owns_memo = getattr(ctx, "shared_memo", None) is None
    if owns_memo:
        ctx.shared_memo = {}
    try:
        for row in plan.rows(ctx):
            if len(head) == 1:
                value = row[head[0]]
            else:
                value = TupleValue([(str(variable), row[variable])
                                    for variable in head])
            try:
                duplicate = value in seen
            except TypeError:
                # unhashable result value: equality-scan fallback
                duplicate = any(value == prior for prior in unhashable)
                if not duplicate:
                    unhashable.append(value)
            else:
                if not duplicate:
                    seen.add(value)
            if not duplicate:
                results.append(value)
    finally:
        if owns_memo:
            ctx.shared_memo = None
    return SetValue(results)


def _walk_once(plan: Operator) -> Iterator[Operator]:
    """Every distinct operator in the plan DAG, once — shared subplans
    are not re-visited through their other consumers."""
    seen: set[int] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children())


def plan_size(plan: Operator) -> int:
    """Number of distinct operators in the plan DAG (for
    tests/benchmarks); a shared subplan counts once."""
    return sum(1 for _ in _walk_once(plan))


def count_unions(plan: Operator) -> int:
    """Number of distinct UnionOp nodes (the variable-elimination
    fan-out)."""
    from repro.algebra.operators import UnionOp
    return sum(1 for node in _walk_once(plan)
               if isinstance(node, UnionOp))


def count_shared(plan: Operator) -> int:
    """Number of SharedOp nodes (the factoring's merge points)."""
    from repro.algebra.operators import SharedOp
    return sum(1 for node in _walk_once(plan)
               if isinstance(node, SharedOp))
