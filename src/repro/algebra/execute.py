"""Plan execution."""

from __future__ import annotations

from repro.errors import SafetyError
from repro.calculus.evaluator import EvalContext
from repro.oodb.values import SetValue, TupleValue
from repro.algebra.operators import Operator, ProjectOp


def execute_plan(plan: ProjectOp, ctx: EvalContext) -> SetValue:
    """Run a compiled plan; the result shape matches
    :func:`repro.calculus.evaluator.evaluate_query`."""
    if not isinstance(plan, ProjectOp):
        raise SafetyError("a plan must be rooted at a ProjectOp")
    head = plan.head
    results = []
    seen: set = set()
    for row in plan.rows(ctx):
        if len(head) == 1:
            value = row[head[0]]
        else:
            value = TupleValue([(str(variable), row[variable])
                                for variable in head])
        if value not in seen:
            seen.add(value)
            results.append(value)
    return SetValue(results)


def plan_size(plan: Operator) -> int:
    """Number of operators in the plan tree (for tests/benchmarks)."""
    return 1 + sum(plan_size(child) for child in plan.children())


def count_unions(plan: Operator) -> int:
    """Number of UnionOp nodes (the variable-elimination fan-out)."""
    from repro.algebra.operators import UnionOp
    own = 1 if isinstance(plan, UnionOp) else 0
    return own + sum(count_unions(child) for child in plan.children())
