"""Plan rewriting (the Section 4.1 / 6 "optimization is crucial" hook).

Three rewrites are implemented:

* **full-text index utilisation** — a :class:`SelectOp` whose atom is
  ``contains(X, <constant pattern>)`` on a variable becomes an
  :class:`IndexFilterOp`: candidate oids come from the inverted index,
  the exact predicate re-checks survivors only.  Non-candidates skip the
  expensive ``text()`` reconstruction entirely (experiment P1).  When
  the filtered variable can only bind oids (every candidate type is a
  class), the filter is flagged ``oid_only`` so an empty candidate set
  can prune a whole union branch before it runs.
* **selection pushdown** — a ground :class:`SelectOp` sitting above an
  operator that does not bind any of the atom's variables commutes below
  it, shrinking intermediate streams.
* **common-prefix factoring** — the union-of-plans elimination of
  Section 5.4 produces branches with long identical prefixes (the same
  class-extent scan, the same leading navigation steps).  The final
  pass structurally hashes every subtree and merges equal ones into a
  single :class:`SharedOp`, turning the plan tree into a DAG whose
  shared streams execute once per run (experiment P7).

A fourth, opt-in rewrite (``structural=True``) replaces each path
variable's union fan-out with the compiler's pre-attached
:class:`StructuralScanOp` alternative — one pre/post interval range
scan over :mod:`repro.structindex` — and fuses an equality select
directly above a scan into an :class:`IntervalJoinOp` (experiment P9).

A fifth, statistics-driven **cost stage** runs last when a
:class:`~repro.stats.Statistics` snapshot is supplied (``stats=...``):

* union branches are reordered by estimated cost, cheapest first, so
  likely-empty branches probe before expensive ones stream;
* an :class:`IndexFilterOp` whose probe provably cannot pay for itself
  (a negation-dominated pattern that prunes nothing, or a regex probe
  whose vocabulary scan costs more than re-checking the estimated
  input) is demoted back to the plain :class:`SelectOp` scan;
* branches gated by an oid-only filter whose pattern has a posting-size
  upper bound of **zero** are pruned statically — before any index
  probe is issued at execution time (``algebra.branches_pruned_static``).

Every reordered/pruned union carries a
:class:`~repro.stats.CostEvidence` record, and the stage runs under the
same plancheck gate as every other rewrite: the verifier's ``PC-COST``
checks re-validate the evidence (experiment P12).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from repro.calculus.formulas import Eq, Pred
from repro.calculus.terms import AttVar, Const, DataVar, PathVar
from repro.oodb.types import ClassType
from repro.text.patterns import PatternExpr
from repro.algebra.operators import (
    BindOp,
    FormulaOp,
    IndexFilterOp,
    IntervalJoinOp,
    MakePathOp,
    NegationOp,
    Operator,
    ProjectOp,
    SeedOp,
    SelectOp,
    SharedOp,
    StepOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
    UnnestOp,
)


#: Test-only corruption switch for the plancheck mutation test: set to
#: ``"pushdown_unguarded"`` (the pushdown ignores its producer guard),
#: ``"interval_probe_misbound"`` (the interval join probes the variable
#: the scan itself binds), ``"branch_order_scrambled"`` (the cost stage
#: duplicates one branch and drops another, so its evidence is no
#: longer a permutation) or ``"prune_nonempty_branch"`` (the cost stage
#: prunes a branch without zero evidence) to seed a broken rewrite the
#: verifier must catch.  Production value is ``None``; never set it
#: outside tests.
_TEST_MUTATION: str | None = None


def optimize(plan: Operator, use_text_index: bool = True,
             pushdown: bool = True, factor: bool = True,
             structural: bool = False, verify: str = "warn",
             query: object = None, metrics: object = None,
             tracer: object = None, stats: object = None,
             plan_key: object = None) -> Operator:
    """Return a rewritten plan (the input is not mutated).

    ``structural=True`` swaps every path-variable union fan-out for the
    compiler's pre-attached :class:`StructuralScanOp` alternative (the
    pre/post-interval physical layer, experiment P9).  This pass must
    run *first*: the other rewrites clone operators, and clones do not
    carry the ``structural_alternative`` attribute.

    Every stage is gated by the :mod:`repro.plancheck` verifier.
    ``verify`` selects the failure policy: ``"raise"`` (tests,
    diffcheck) raises :class:`~repro.errors.PlanVerificationError` on
    the first faulty stage, ``"warn"`` (the production default) counts
    ``plancheck.faults`` on ``metrics`` and emits one ``UserWarning``
    but keeps the *last verified* plan, ``"off"`` skips verification.
    ``query`` (the calculus form) enables the head-match check;
    ``tracer`` gets one sub-span per stage (the compile-phase breakdown
    of ``explain_analyze``).
    """
    if verify not in ("raise", "warn", "off"):
        raise ValueError(f"unknown verify policy {verify!r}")
    stages: list[tuple[str, object]] = []
    if structural:
        stages.append(("structuralize", _structuralize))
    var_types = getattr(plan, "var_types", None) or {}
    stages.append(("index", lambda p: _rewrite(p, use_text_index,
                                               var_types)))
    if pushdown:
        stages.append(("pushdown", _pushdown))
    if factor:
        stages.append(("factor", factor_shared_prefixes))
    if stats is not None:
        stages.append(("cost",
                       lambda p: apply_cost_stage(p, stats,
                                                  plan_key=plan_key,
                                                  metrics=metrics)))
    if verify == "off":
        for name, stage in stages:
            plan = _run_stage(stage, plan, tracer, name)
        return plan

    from repro.plancheck.verifier import check_plan, verify_plan
    verified = plan
    for name, stage in stages:
        plan = _run_stage(stage, plan, tracer, name)
        if verify == "raise":
            check_plan(plan, query=query, stage=name, metrics=metrics,
                       stats=stats)
            verified = plan
            continue
        faults = verify_plan(plan, query=query, stage=name,
                             metrics=metrics, stats=stats)
        if faults:
            # keep serving the last plan that verified — a broken
            # rewrite must never reach execution
            warnings.warn(
                f"optimizer stage {name!r} produced a plan that fails "
                f"static verification ({faults[0].code}: "
                f"{faults[0].message}); keeping the pre-stage plan",
                stacklevel=2)
            if metrics is not None:
                metrics.inc("plancheck.stages_rejected")
            plan = verified
        else:
            verified = plan
    return plan


def _run_stage(stage: Callable[[Operator], Operator], plan: Operator,
               tracer: Any,
               name: str | None = None) -> Operator:
    if tracer is None or name is None:
        return stage(plan)
    with tracer.span(f"optimize.{name}"):
        return stage(plan)


def _structuralize(plan: Operator) -> Operator:
    alternative = getattr(plan, "structural_alternative", None)
    if alternative is not None:
        return _structuralize(alternative)
    plan = _rebuild(plan, _structuralize)
    if isinstance(plan, SelectOp):
        fused = _try_interval_join(plan)
        if fused is not None:
            return fused
    return plan


def _try_interval_join(select: SelectOp) -> IntervalJoinOp | None:
    """Fuse ``Select (out ≡ probe)`` directly above a structural scan
    into the ancestor/descendant interval join."""
    scan = select.child
    if (not isinstance(scan, StructuralScanOp)
            or isinstance(scan, StructuralAttrScanOp)):
        return None
    atom = select.atom
    if not isinstance(atom, Eq):
        return None
    if atom.left is scan.out_var:
        probe = atom.right
    elif atom.right is scan.out_var:
        probe = atom.left
    else:
        return None
    if not isinstance(probe, (DataVar, PathVar, AttVar)):
        return None
    if probe is scan.out_var or probe is scan.path_var:
        return None
    if _TEST_MUTATION == "interval_probe_misbound":
        # seeded bug: probe the variable the scan itself binds — the
        # join then consumes a variable nothing upstream produces
        probe = scan.out_var
    return IntervalJoinOp(scan.child, scan.source_var, scan.path_var,
                          scan.out_var, probe, atom)


def _rewrite(plan: Operator, use_text_index: bool,
             var_types: dict) -> Operator:
    plan = _rebuild(plan,
                    lambda child: _rewrite(child, use_text_index,
                                           var_types))
    if use_text_index and isinstance(plan, SelectOp):
        replacement = _try_index_filter(plan, var_types)
        if replacement is not None:
            return replacement
    return plan


def _try_index_filter(select: SelectOp,
                      var_types: dict) -> IndexFilterOp | None:
    atom = select.atom
    if not (isinstance(atom, Pred) and atom.predicate == "contains"
            and len(atom.arguments) == 2):
        return None
    subject, pattern_term = atom.arguments
    if not isinstance(subject, DataVar):
        return None
    if not (isinstance(pattern_term, Const)
            and isinstance(pattern_term.value, PatternExpr)):
        return None
    types = var_types.get(subject) or []
    # every candidate type a class ⇒ the variable only binds oids ⇒ an
    # empty index candidate set proves the filter passes nothing
    oid_only = bool(types) and all(isinstance(tp, ClassType)
                                   for tp in types)
    return IndexFilterOp(select.child, subject, pattern_term.value, atom,
                         oid_only=oid_only)


def _pushdown(plan: Operator) -> Operator:
    plan = _rebuild(plan, _pushdown)
    if isinstance(plan, (SelectOp, IndexFilterOp)):
        moved = _sink(plan)
        if moved is not None:
            return moved
    return plan


def _sink(select: Any) -> Operator | None:
    """Move a filter below its child when the child binds none of the
    variables the filter needs."""
    child = select.child
    needed = _needed_vars(select)
    if isinstance(child, (BindOp, StepOp, UnnestOp, MakePathOp,
                          StructuralScanOp, IntervalJoinOp)):
        produced = _produced_vars(child)
        # seeded bug for the plancheck mutation test: sinking without
        # the producer guard pushes a filter below its binder
        if needed & produced and _TEST_MUTATION != "pushdown_unguarded":
            return None
        relocated = _clone_filter(select, child.child)
        rebuilt = _rebuild_single_child(child, _pushdown(relocated))
        return rebuilt
    if isinstance(child, UnionOp):
        branches = [_pushdown(_clone_filter(select, branch))
                    for branch in child.branches]
        return UnionOp(branches)
    return None


def _needed_vars(select: Any) -> set:
    # the operator's own dataflow contract (checked by repro.plancheck)
    # is exactly the pushdown's commutation condition
    return set(select.consumes())


def _produced_vars(operator: Operator) -> set:
    return set(operator.produces())


def _clone_filter(select: Any,
                  new_child: Operator) -> Operator:
    if isinstance(select, IndexFilterOp):
        return IndexFilterOp(new_child, select.variable, select.pattern,
                             select.recheck_atom,
                             oid_only=select.oid_only)
    return SelectOp(new_child, select.atom)


def _rebuild_single_child(operator: Operator,
                          new_child: Operator) -> Operator:
    if isinstance(operator, BindOp):
        return BindOp(new_child, operator.variable, operator.term)
    if isinstance(operator, StepOp):
        return StepOp(new_child, operator.source_var, operator.kind,
                      operator.argument, operator.out_var)
    if isinstance(operator, UnnestOp):
        return UnnestOp(new_child, operator.collection_term,
                        operator.element_var, operator.index_var,
                        operator.mode)
    if isinstance(operator, MakePathOp):
        return MakePathOp(new_child, operator.template, operator.out_var)
    if isinstance(operator, StructuralAttrScanOp):
        return StructuralAttrScanOp(new_child, operator.source_var,
                                    operator.path_var, operator.out_var,
                                    operator.attr, operator.attr_var,
                                    operator.value_var)
    if isinstance(operator, StructuralScanOp):
        return StructuralScanOp(new_child, operator.source_var,
                                operator.path_var, operator.out_var)
    if isinstance(operator, IntervalJoinOp):
        return IntervalJoinOp(new_child, operator.source_var,
                              operator.path_var, operator.out_var,
                              operator.probe_var, operator.recheck_atom)
    raise TypeError(f"cannot rebuild {operator!r}")  # pragma: no cover


def _rebuild(plan: Operator,
             transform: Callable[[Operator], Operator]) -> Operator:
    """Apply ``transform`` to children, reconstructing the node."""
    if isinstance(plan, ProjectOp):
        rebuilt = ProjectOp(transform(plan.child), plan.head)
        rebuilt.var_types = getattr(plan, "var_types", None)
        return rebuilt
    if isinstance(plan, SelectOp):
        return SelectOp(transform(plan.child), plan.atom)
    if isinstance(plan, IndexFilterOp):
        return IndexFilterOp(transform(plan.child), plan.variable,
                             plan.pattern, plan.recheck_atom,
                             oid_only=plan.oid_only)
    if isinstance(plan, NegationOp):
        return NegationOp(transform(plan.child), plan.formula)
    if isinstance(plan, UnionOp):
        return UnionOp([transform(branch) for branch in plan.branches])
    if isinstance(plan, SharedOp):
        return SharedOp(transform(plan.child), plan.ref_count,
                        plan.shared_id)
    if isinstance(plan, (BindOp, StepOp, UnnestOp, MakePathOp,
                         StructuralScanOp, IntervalJoinOp)):
        return _rebuild_single_child(plan, transform(plan.child))
    if isinstance(plan, FormulaOp):
        return FormulaOp(transform(plan.child), plan.formula)
    if isinstance(plan, SeedOp):
        return plan
    return plan


# -- common-prefix factoring ------------------------------------------------


def factor_shared_prefixes(plan: Operator) -> Operator:
    """Merge structurally identical subplans into :class:`SharedOp`
    nodes, turning the plan tree into a DAG.

    Every node gets a structural key ``(class, parameters, child
    keys)``; equal keys ⇒ equal subplans.  Parameters compare by object
    *identity*, not by printed form: the compiler's trie sharing and the
    pushdown's cloning reuse the same term/variable objects, so clones
    of the same compiled fragment merge while coincidentally
    similar-looking fragments (which would carry distinct fresh
    variables) never do — a merge cannot change semantics.

    A subplan referenced at least twice is wrapped in one
    :class:`SharedOp`; seeds and existing SharedOps are left alone.
    """
    interned: dict[tuple, int] = {}
    key_of: dict[int, int] = {}          # id(node) -> structural key
    canonical: dict[int, Operator] = {}  # key -> first node seen

    def intern(node: Operator) -> int:
        found = key_of.get(id(node))
        if found is not None:
            return found
        child_keys = tuple(intern(child) for child in node.children())
        raw = (type(node).__name__, _params_of(node), child_keys)
        key = interned.setdefault(raw, len(interned))
        key_of[id(node)] = key
        canonical.setdefault(key, node)
        return key

    root_key = intern(plan)

    # reference counts over the canonical DAG (a node consumed twice by
    # the same parent — duplicate union branches — counts twice)
    refs: dict[int, int] = {}
    visited: set[int] = set()
    stack = [root_key]
    while stack:
        key = stack.pop()
        if key in visited:
            continue
        visited.add(key)
        for child in canonical[key].children():
            child_key = key_of[id(child)]
            refs[child_key] = refs.get(child_key, 0) + 1
            stack.append(child_key)

    built: dict[int, Operator] = {}
    wrappers: dict[int, SharedOp] = {}
    counter = [0]

    def build(key: int) -> Operator:
        done = built.get(key)
        if done is None:
            node = canonical[key]
            children = [resolve(child) for child in node.children()]
            if children == node.children():  # identity: nothing changed
                done = node
            else:
                done = _with_children(node, children)
            built[key] = done
        return done

    def resolve(child: Operator) -> Operator:
        key = key_of[id(child)]
        node = build(key)
        if refs.get(key, 0) >= 2 and _shareable(canonical[key]):
            wrapper = wrappers.get(key)
            if wrapper is None:
                counter[0] += 1
                wrapper = SharedOp(node, ref_count=refs[key],
                                   shared_id=counter[0])
                wrappers[key] = wrapper
            return wrapper
        return node

    return build(root_key)


def _shareable(node: Operator) -> bool:
    # a Seed stream is free to recompute; nested SharedOps add nothing
    return not isinstance(node, (SeedOp, SharedOp))


def _params_of(node: Operator) -> tuple:
    """The node's non-child parameters, compared by identity."""
    if isinstance(node, BindOp):
        return (id(node.variable), id(node.term))
    if isinstance(node, UnnestOp):
        return (id(node.collection_term), id(node.element_var),
                id(node.index_var), node.mode)
    if isinstance(node, StepOp):
        argument = (node.argument
                    if isinstance(node.argument, (str, int))
                    or node.argument is None else id(node.argument))
        return (id(node.source_var), node.kind, argument,
                id(node.out_var))
    if isinstance(node, MakePathOp):
        return (id(node.template), id(node.out_var))
    if isinstance(node, SelectOp):
        return (id(node.atom),)
    if isinstance(node, IndexFilterOp):
        return (id(node.variable), id(node.pattern),
                id(node.recheck_atom), node.oid_only)
    if isinstance(node, (NegationOp, FormulaOp)):
        return (id(node.formula),)
    if isinstance(node, StructuralAttrScanOp):
        return (id(node.source_var), id(node.path_var),
                id(node.out_var), node.attr,
                None if node.attr_var is None else id(node.attr_var),
                id(node.value_var))
    if isinstance(node, StructuralScanOp):
        return (id(node.source_var), id(node.path_var), id(node.out_var))
    if isinstance(node, IntervalJoinOp):
        return (id(node.source_var), id(node.path_var), id(node.out_var),
                id(node.probe_var), id(node.recheck_atom))
    if isinstance(node, ProjectOp):
        return tuple(id(variable) for variable in node.head)
    if isinstance(node, (UnionOp, SeedOp)):
        return ()
    # unknown/SharedOp nodes never merge with anything else
    return (id(node),)


# -- the cost stage ---------------------------------------------------------


def apply_cost_stage(plan: Operator, stats: Any,
                     plan_key: object = None,
                     metrics: object = None) -> Operator:
    """The statistics-driven rewrite: selectivity-ordered unions,
    provable-empty branch pruning, scan-vs-index access-path choice,
    and ``est_rows``/``est_cost`` annotations on every node.

    The transform is memoized by node *identity* so the DAG the factor
    stage built survives intact: both consumers of a :class:`SharedOp`
    resolve to the same rebuilt object.  Nodes whose subtree the stage
    does not touch are returned as-is (the input plan is only ever
    annotated, never restructured in place).
    """
    from repro.stats.cost import annotate_estimates

    memo: dict[int, Operator] = {}
    est_memo: dict = {}
    ordinal = [0]

    def transform(node: Operator) -> Operator:
        done = memo.get(id(node))
        if done is not None:
            return done
        children = [transform(child) for child in node.children()]
        if children == node.children():
            rebuilt = node
        else:
            rebuilt = _with_children(node, children)
        if isinstance(rebuilt, IndexFilterOp):
            rebuilt = _choose_access_path(rebuilt, stats, est_memo,
                                          metrics)
        elif isinstance(rebuilt, UnionOp):
            rebuilt = _order_and_prune(rebuilt, stats, est_memo,
                                       plan_key, ordinal, metrics)
        memo[id(node)] = rebuilt
        return rebuilt

    rebuilt = transform(plan)
    annotate_estimates(rebuilt, stats, est_memo)
    return rebuilt


def _choose_access_path(node: IndexFilterOp, stats: Any, est_memo: dict,
                        metrics: object) -> Operator:
    """Demote an index filter back to a plain scan-and-recheck when the
    probe provably cannot pay for itself.

    Demotion never changes which rows pass — the exact recheck is the
    same atom either way — so the only question is cost.  Two cases are
    safe wins: a pattern whose runtime probe is guaranteed to return
    ``None`` (negation-dominated — the probe prunes nothing and the
    filter already re-checks every row), and a non-``oid_only`` filter
    whose probe (e.g. a regex word forcing a vocabulary scan) costs more
    than simply re-checking the estimated input.  Pruning-capable
    ``oid_only`` filters with a live probe are never demoted: their
    empty candidate set is what lets :class:`UnionOp` skip branches.
    """
    from repro.stats.cost import estimate

    demote = stats.prunes_nothing(node.pattern)
    if not demote and not node.oid_only:
        child_rows = estimate(node.child, stats, est_memo).rows
        demote = stats.probe_cost(node.pattern) > child_rows
    if not demote:
        return node
    if metrics is not None:
        metrics.inc("algebra.cost_demotions")
    return SelectOp(node.child, node.recheck_atom)


def _zero_evidence(branch: Operator,
                   stats: Any) -> tuple[str, Any] | None:
    """Provable-emptiness evidence for one union branch, or ``None``.

    A branch gated by an ``oid_only`` :class:`IndexFilterOp` whose
    pattern has a posting-size upper bound of **zero** cannot yield a
    row — the runtime probe would prune it anyway, but statically
    removing it skips the probe and the branch setup entirely.  The
    returned ``("empty_candidates", pattern)`` pair is what the
    verifier's ``PC-COST`` check re-validates against the same
    statistics snapshot.
    """
    stack = [branch]
    while stack:
        node = stack.pop()
        if isinstance(node, UnionOp):
            continue
        if (isinstance(node, IndexFilterOp) and node.oid_only
                and stats.candidate_upper_bound(node.pattern) == 0):
            return ("empty_candidates", node.pattern)
        stack.extend(node.children())
    return None


def _order_and_prune(union: UnionOp, stats: Any, est_memo: dict,
                     plan_key: object, ordinal: list,
                     metrics: object) -> UnionOp:
    """Reorder a union's branches cheapest-first and drop branches with
    zero evidence, attaching the :class:`~repro.stats.CostEvidence`
    audit record the verifier re-checks."""
    from repro.stats.cost import estimate
    from repro.stats.statistics import CostEvidence

    branches = union.branches
    original = len(branches)
    this_ordinal = ordinal[0]
    ordinal[0] += 1
    pruned: dict[int, tuple[str, Any]] = {}
    kept: list[int] = []
    for index, branch in enumerate(branches):
        evidence = _zero_evidence(branch, stats)
        if evidence is not None:
            pruned[index] = evidence
        else:
            kept.append(index)
    if not kept:
        # a union of zero plans is malformed; keep the first branch —
        # its runtime probe prunes it at negligible cost
        first = min(pruned)
        del pruned[first]
        kept.append(first)

    def sort_key(index: int) -> tuple:
        est = estimate(branches[index], stats, est_memo)
        cost = est.cost
        actual = (stats.branch_actual(plan_key, this_ordinal, index)
                  if plan_key is not None else None)
        if actual is not None:
            # measured reality outranks the model: rescale the cost by
            # the observed-vs-estimated cardinality ratio, so branches
            # that came back empty probe first
            cost *= (actual + 1.0) / (est.rows + 1.0)
        return (cost, index)

    order = tuple(sorted(kept, key=sort_key))
    if _TEST_MUTATION == "branch_order_scrambled" and len(order) > 1:
        # seeded bug: duplicate the first branch, drop the last — the
        # evidence is no longer a permutation of the kept branches
        order = (order[0],) + order[:-1]
    if _TEST_MUTATION == "prune_nonempty_branch" and len(order) > 1:
        # seeded bug: prune a branch without zero evidence
        pruned[order[-1]] = ("mutation", None)
        order = order[:-1]
    if metrics is not None and pruned:
        statically = sum(1 for kind, _ in pruned.values()
                         if kind == "empty_candidates")
        if statically:
            metrics.inc("algebra.branches_pruned_static", statically)
    if (not pruned and order == tuple(range(original))
            and original < 2):
        return union  # single-branch union: nothing to decide or audit
    rebuilt = UnionOp([branches[index] for index in order])
    rebuilt.cost_evidence = CostEvidence(original, order, pruned,
                                         stats.generation,
                                         ordinal=this_ordinal)
    return rebuilt


def _with_children(node: Operator, children: list[Operator]) -> Operator:
    if isinstance(node, ProjectOp):
        rebuilt = ProjectOp(children[0], node.head)
        rebuilt.var_types = getattr(node, "var_types", None)
        return rebuilt
    if isinstance(node, SelectOp):
        return SelectOp(children[0], node.atom)
    if isinstance(node, IndexFilterOp):
        return IndexFilterOp(children[0], node.variable, node.pattern,
                             node.recheck_atom, oid_only=node.oid_only)
    if isinstance(node, NegationOp):
        return NegationOp(children[0], node.formula)
    if isinstance(node, FormulaOp):
        return FormulaOp(children[0], node.formula)
    if isinstance(node, UnionOp):
        return UnionOp(list(children))
    if isinstance(node, SharedOp):
        return SharedOp(children[0], node.ref_count, node.shared_id)
    if isinstance(node, (BindOp, StepOp, UnnestOp, MakePathOp,
                         StructuralScanOp, IntervalJoinOp)):
        return _rebuild_single_child(node, children[0])
    raise TypeError(f"cannot rebuild {node!r}")  # pragma: no cover
