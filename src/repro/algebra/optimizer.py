"""Plan rewriting (the Section 4.1 / 6 "optimization is crucial" hook).

Two rewrites are implemented:

* **full-text index utilisation** — a :class:`SelectOp` whose atom is
  ``contains(X, <constant pattern>)`` on a variable becomes an
  :class:`IndexFilterOp`: candidate oids come from the inverted index,
  the exact predicate re-checks survivors only.  Non-candidates skip the
  expensive ``text()`` reconstruction entirely (experiment P1).
* **selection pushdown** — a ground :class:`SelectOp` sitting above an
  operator that does not bind any of the atom's variables commutes below
  it, shrinking intermediate streams.
"""

from __future__ import annotations

from repro.calculus.formulas import Pred
from repro.calculus.terms import Const, DataVar
from repro.text.patterns import PatternExpr
from repro.algebra.operators import (
    BindOp,
    IndexFilterOp,
    MakePathOp,
    NegationOp,
    Operator,
    ProjectOp,
    SelectOp,
    StepOp,
    UnionOp,
    UnnestOp,
)


def optimize(plan: Operator, use_text_index: bool = True,
             pushdown: bool = True) -> Operator:
    """Return a rewritten plan (the input is not mutated)."""
    plan = _rewrite(plan, use_text_index)
    if pushdown:
        plan = _pushdown(plan)
    return plan


def _rewrite(plan: Operator, use_text_index: bool) -> Operator:
    plan = _rebuild(plan, lambda child: _rewrite(child, use_text_index))
    if use_text_index and isinstance(plan, SelectOp):
        replacement = _try_index_filter(plan)
        if replacement is not None:
            return replacement
    return plan


def _try_index_filter(select: SelectOp) -> IndexFilterOp | None:
    atom = select.atom
    if not (isinstance(atom, Pred) and atom.predicate == "contains"
            and len(atom.arguments) == 2):
        return None
    subject, pattern_term = atom.arguments
    if not isinstance(subject, DataVar):
        return None
    if not (isinstance(pattern_term, Const)
            and isinstance(pattern_term.value, PatternExpr)):
        return None
    return IndexFilterOp(select.child, subject, pattern_term.value, atom)


def _pushdown(plan: Operator) -> Operator:
    plan = _rebuild(plan, _pushdown)
    if isinstance(plan, (SelectOp, IndexFilterOp)):
        moved = _sink(plan)
        if moved is not None:
            return moved
    return plan


def _sink(select) -> Operator | None:
    """Move a filter below its child when the child binds none of the
    variables the filter needs."""
    child = select.child
    needed = _needed_vars(select)
    if isinstance(child, (BindOp, StepOp, UnnestOp, MakePathOp)):
        produced = _produced_vars(child)
        if needed & produced:
            return None
        relocated = _clone_filter(select, child.child)
        rebuilt = _rebuild_single_child(child, _pushdown(relocated))
        return rebuilt
    if isinstance(child, UnionOp):
        branches = [_pushdown(_clone_filter(select, branch))
                    for branch in child.branches]
        return UnionOp(branches)
    return None


def _needed_vars(select) -> set:
    if isinstance(select, IndexFilterOp):
        atom = select.recheck_atom
    else:
        atom = select.atom
    return set(atom.free_variables())


def _produced_vars(operator: Operator) -> set:
    if isinstance(operator, BindOp):
        return {operator.variable}
    if isinstance(operator, StepOp):
        return {operator.out_var}
    if isinstance(operator, UnnestOp):
        produced = {operator.element_var}
        if operator.index_var is not None:
            produced.add(operator.index_var)
        return produced
    if isinstance(operator, MakePathOp):
        return {operator.out_var}
    return set()


def _clone_filter(select, new_child: Operator):
    if isinstance(select, IndexFilterOp):
        return IndexFilterOp(new_child, select.variable, select.pattern,
                             select.recheck_atom)
    return SelectOp(new_child, select.atom)


def _rebuild_single_child(operator: Operator,
                          new_child: Operator) -> Operator:
    if isinstance(operator, BindOp):
        return BindOp(new_child, operator.variable, operator.term)
    if isinstance(operator, StepOp):
        return StepOp(new_child, operator.source_var, operator.kind,
                      operator.argument, operator.out_var)
    if isinstance(operator, UnnestOp):
        return UnnestOp(new_child, operator.collection_term,
                        operator.element_var, operator.index_var,
                        operator.mode)
    if isinstance(operator, MakePathOp):
        return MakePathOp(new_child, operator.template, operator.out_var)
    raise TypeError(f"cannot rebuild {operator!r}")  # pragma: no cover


def _rebuild(plan: Operator, transform) -> Operator:
    """Apply ``transform`` to children, reconstructing the node."""
    if isinstance(plan, ProjectOp):
        return ProjectOp(transform(plan.child), plan.head)
    if isinstance(plan, SelectOp):
        return SelectOp(transform(plan.child), plan.atom)
    if isinstance(plan, IndexFilterOp):
        return IndexFilterOp(transform(plan.child), plan.variable,
                             plan.pattern, plan.recheck_atom)
    if isinstance(plan, NegationOp):
        return NegationOp(transform(plan.child), plan.formula)
    if isinstance(plan, UnionOp):
        return UnionOp([transform(branch) for branch in plan.branches])
    if isinstance(plan, (BindOp, StepOp, UnnestOp, MakePathOp)):
        return _rebuild_single_child(plan, transform(plan.child))
    from repro.algebra.operators import FormulaOp, SeedOp
    if isinstance(plan, FormulaOp):
        return FormulaOp(transform(plan.child), plan.formula)
    if isinstance(plan, SeedOp):
        return plan
    return plan
