"""Evaluation of calculus queries over an instance (Section 5.2).

The evaluator is a binding-propagation engine: formulas are satisfied by
*extending* a variable binding, and atoms play two roles —

* **binders** — path predicates enumerate concrete paths (under the
  restricted or liberal semantics) and bind the data/path/attribute
  variables on them; ``X = t`` and ``X ∈ t`` with ground right sides bind
  ``X``;
* **checkers** — fully ground atoms are simply tested.

Conjunctions are evaluated by a greedy ordering: at each step the first
conjunct whose requirements are met runs.  A conjunction in which no
conjunct can make progress is not range-restricted; this raises
:class:`~repro.errors.SafetyError` (the static analysis in
:mod:`repro.calculus.safety` reports the same situation before
evaluation).

Union values are handled with the *implicit selector* semantics of
Sections 4.2 / 5.3: an attribute selection on a marked value silently
skips the marker when the payload carries the attribute, and an atom
over a branch lacking the attribute is **false** (never an error) when
the navigation started from a variable.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import EvaluationError, QueryError, SafetyError
from repro.calculus.formulas import (
    And,
    Atom,
    Eq,
    Exists,
    Forall,
    Formula,
    Implies,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
    Subset,
)
from repro.calculus.functions import FunctionRegistry, default_registry
from repro.calculus.terms import (
    AttName,
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    FunTerm,
    Index,
    ListTerm,
    MethodTerm,
    Name,
    PathApply,
    PathVar,
    Sel,
    SetBind,
    SetTerm,
    TupleTerm,
    term_variables,
)
from repro.oodb.instance import Instance
from repro.oodb.values import (
    ListValue,
    Oid,
    SetValue,
    TupleValue,
    equivalent,
)
from repro.paths.enumeration import RESTRICTED, paths_from
from repro.paths.steps import Path

Binding = dict


class EvalContext:
    """Everything evaluation needs besides the formula itself."""

    def __init__(self, instance: Instance,
                 registry: FunctionRegistry | None = None,
                 provenance: dict | None = None,
                 path_semantics: str = RESTRICTED,
                 max_paths: int | None = 200_000) -> None:
        self.instance = instance
        self.registry = registry or default_registry()
        self.provenance = provenance
        self.path_semantics = path_semantics
        self.max_paths = max_paths
        #: Optional full-text index used by the algebra optimizer.
        self.text_index = None
        #: Optional pre/post structural index (repro.structindex) used
        #: by the structural rewrite's scan/join operators.
        self.struct_index = None
        #: Observability hooks (repro.observe) — ``None`` means disabled;
        #: every instrumentation site guards with one ``is not None`` test.
        self.metrics = None
        self.tracer = None
        self.profiler = None
        #: Per-execution memo of SharedOp streams (the DAG factoring of
        #: the algebra optimizer).  ``None`` = no execution in flight;
        #: :func:`repro.algebra.execute.execute_plan` installs a dict
        #: for the duration of one run and clears it afterwards, so
        #: cached plans never replay rows across runs.
        self.shared_memo = None

    def root_value(self, name: str) -> object:
        return self.instance.root(name)

    def fork(self) -> "EvalContext":
        """A per-call evaluation context.

        Shares the instance, function registry and provenance; copies
        the observer and index wiring as of the fork.  Each concurrent
        query evaluates in its own fork, so per-query mutable state
        (the nested-query memo, the evaluation-depth flag) never leaks
        between threads while counters still land in the one shared
        registry.
        """
        clone = EvalContext(self.instance, registry=self.registry,
                            provenance=self.provenance,
                            path_semantics=self.path_semantics,
                            max_paths=self.max_paths)
        clone.text_index = self.text_index
        clone.struct_index = self.struct_index
        clone.metrics = self.metrics
        clone.tracer = self.tracer
        clone.profiler = self.profiler
        return clone


def evaluate_query(query: Query, ctx: EvalContext) -> SetValue:
    """Evaluate ``{x̄ | φ}``; the result is always a set (Section 5.2).

    One head variable → a set of its values; several → a set of ordered
    tuples with one attribute per variable.

    Nested queries are *closed* (no free variables), so their results
    are memoized for the duration of the outermost evaluation — without
    this, ``Q1 - Q2`` would re-evaluate Q2 once per Q1 element.
    """
    outermost = not getattr(ctx, "_evaluating", False)
    if outermost:
        ctx._evaluating = True
        ctx._nested_cache = {}
    try:
        cache = getattr(ctx, "_nested_cache", None)
        if cache is not None and not outermost:
            cached = cache.get(id(query))
            if cached is not None:
                return cached[1]
        results: list = []
        seen: set = set()
        metrics = ctx.metrics
        for binding in satisfy(query.formula, {}, ctx):
            if metrics is not None:
                metrics.inc("calculus.bindings")
            row = _project(query, binding)
            if row not in seen:
                seen.add(row)
                results.append(row)
        result_set = SetValue(results)
        if cache is not None and not outermost:
            # hold the query object so its id cannot be recycled
            cache[id(query)] = (query, result_set)
        return result_set
    finally:
        if outermost:
            ctx._evaluating = False
            ctx._nested_cache = {}


def _project(query: Query, binding: Binding):
    values = []
    for variable in query.head:
        if variable not in binding:
            raise SafetyError(
                f"head variable {variable} was never bound — the formula "
                "is not range-restricted")
        values.append(binding[variable])
    if len(values) == 1:
        return values[0]
    return TupleValue([(str(v), value)
                       for v, value in zip(query.head, values)])


# ---------------------------------------------------------------------------
# Term evaluation
# ---------------------------------------------------------------------------


def eval_term(term, binding: Binding, ctx: EvalContext):
    """Evaluate a ground (under ``binding``) term to a value."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Name):
        return ctx.root_value(term.name)
    if isinstance(term, (DataVar, PathVar, AttVar)):
        if term in binding:
            return binding[term]
        raise EvaluationError(f"unbound variable {term}")
    if isinstance(term, AttName):
        return term.name
    if isinstance(term, TupleTerm):
        return TupleValue([
            (_attr_name(attribute, binding), eval_term(sub, binding, ctx))
            for attribute, sub in term.fields])
    if isinstance(term, ListTerm):
        return ListValue(
            eval_term(sub, binding, ctx) for sub in term.items)
    if isinstance(term, SetTerm):
        return SetValue(
            eval_term(sub, binding, ctx) for sub in term.items)
    if isinstance(term, FunTerm):
        arguments = [eval_term(sub, binding, ctx)
                     for sub in term.arguments]
        if not ctx.registry.has_function(term.function):
            # fall back to O₂ method dispatch when the first argument is
            # an object (the paper carries methods "for the sake of
            # completeness"; footnote 3 even allows paths through them)
            from repro.errors import InstanceError, QueryTypeError
            if arguments and isinstance(arguments[0], Oid):
                try:
                    return ctx.instance.call_method(
                        term.function, arguments[0], *arguments[1:])
                except InstanceError as exc:
                    raise QueryTypeError(
                        f"{term.function!r} is neither an interpreted "
                        f"function nor a method of "
                        f"{arguments[0].class_name}: {exc}") from exc
            # a name that is neither a function nor a method is a static
            # mistake — raise loudly instead of "atom is false"
            raise QueryTypeError(
                f"unknown function or method {term.function!r}")
        function = ctx.registry.function(term.function)
        return function(ctx, *arguments)
    if isinstance(term, MethodTerm):
        arguments = [eval_term(sub, binding, ctx)
                     for sub in term.arguments]
        receiver = arguments[0]
        if not isinstance(receiver, Oid):
            raise EvaluationError(
                f"method {term.method!r} needs an object receiver")
        return ctx.instance.call_method(
            term.method, receiver, *arguments[1:])
    if isinstance(term, PathApply):
        root = eval_term(term.root, binding, ctx)
        matches = list(_match_path(
            root, term.path.components, binding, ctx, frozenset()))
        if not matches:
            if isinstance(term.root, Name):
                # Section 4.2: implicit selection is for variables only;
                # wrong-branch access on a named instance is a hard
                # runtime type error.
                from repro.errors import WrongBranchAccess
                raise WrongBranchAccess(
                    f"named instance {term.root} has no component "
                    f"{term.path}")
            raise EvaluationError(
                f"path {term.path} does not apply "
                f"(evaluating data term {term})")
        first_binding, value = matches[0]
        if len(matches) > 1:
            raise EvaluationError(
                f"path {term.path} is ambiguous in a data term "
                f"({len(matches)} matches); use a path predicate")
        unbound = [v for v in term.path.variables()
                   if v not in binding]
        if unbound:
            raise EvaluationError(
                f"data term {term} has unbound path variables {unbound}")
        return value
    if isinstance(term, Query):
        return evaluate_query(term, ctx)
    raise EvaluationError(f"cannot evaluate term {term!r}")


def _attr_name(attribute, binding: Binding) -> str:
    if isinstance(attribute, AttName):
        return attribute.name
    if isinstance(attribute, AttVar):
        if attribute in binding:
            return binding[attribute]
        raise EvaluationError(f"unbound attribute variable {attribute}")
    raise EvaluationError(f"bad attribute term {attribute!r}")


def _is_ground(term, binding: Binding) -> bool:
    return all(v in binding for v in term_variables(term))


# ---------------------------------------------------------------------------
# Path matching — the heart of the path predicate
# ---------------------------------------------------------------------------


def _match_path(current, components, binding: Binding, ctx: EvalContext,
                derefed: frozenset) -> Iterator[tuple[Binding, object]]:
    """Yield (extended binding, reached value) for every instantiation of
    the component sequence from ``current``.

    ``derefed`` tracks the implicit dereferences performed by attribute /
    index selections (for the restricted semantics these do not count —
    only path-variable valuations are restricted, per Section 5.2)."""
    if not components:
        yield binding, current
        return
    head, rest = components[0], components[1:]

    if isinstance(head, PathVar):
        if head in binding:
            bound_path = binding[head]
            if not isinstance(bound_path, Path):
                return
            try:
                reached = bound_path.apply(current, ctx.instance)
            except EvaluationError:
                return
            yield from _match_path(reached, rest, binding, ctx, derefed)
            return
        metrics = ctx.metrics
        for concrete, reached in paths_from(
                current, ctx.instance, ctx.path_semantics,
                ctx.max_paths):
            if metrics is not None:
                metrics.inc("calculus.paths_enumerated")
            extended = dict(binding)
            extended[head] = concrete
            yield from _match_path(reached, rest, extended, ctx, derefed)
        return

    if isinstance(head, Sel):
        attribute = head.attribute
        base = _auto_deref(current, ctx)
        if base is None:
            return
        if isinstance(attribute, AttName):
            for target in _select_attribute(base, attribute.name):
                yield from _match_path(target, rest, binding, ctx, derefed)
            return
        # attribute variable
        if attribute in binding:
            for target in _select_attribute(base, binding[attribute]):
                yield from _match_path(target, rest, binding, ctx, derefed)
            return
        if isinstance(base, TupleValue):
            # An unbound attribute variable values over exactly the
            # names a ground selection would accept — including the
            # payload attributes an implicit union selector reaches
            # (Section 5.3).  Anything else would make ``.A ∧ A = 'x'``
            # differ from ``.x``, and the calculus disagree with the
            # schema-path expansion the algebra compiles (Section 5.4).
            names = list(base.attribute_names)
            if base.is_marked and isinstance(base.marked_value,
                                             TupleValue):
                names.extend(n for n in
                             base.marked_value.attribute_names
                             if n not in names)
            for field_name in names:
                for target in _select_attribute(base, field_name):
                    extended = dict(binding)
                    extended[attribute] = field_name
                    yield from _match_path(
                        target, rest, extended, ctx, derefed)
        return

    if isinstance(head, Index):
        base = _auto_deref(current, ctx)
        if base is None:
            return
        if isinstance(base, TupleValue):
            # Positional access skips the marker of a union value (the
            # "Important Omissions" sugar: Letters[I](Y)[J]·to indexes
            # the letter tuple, not its one-field wrapper).
            if base.is_marked and isinstance(base.marked_value,
                                             TupleValue):
                base = base.marked_value
            base = base.as_heterogeneous_list()
        if not isinstance(base, ListValue):
            return
        if isinstance(head.index, int):
            if 0 <= head.index < len(base):
                yield from _match_path(
                    base[head.index], rest, binding, ctx, derefed)
            return
        variable = head.index
        if variable in binding:
            bound = binding[variable]
            if isinstance(bound, int) and 0 <= bound < len(base):
                yield from _match_path(
                    base[bound], rest, binding, ctx, derefed)
            return
        for position, element in enumerate(base):
            extended = dict(binding)
            extended[variable] = position
            yield from _match_path(element, rest, extended, ctx, derefed)
        return

    if isinstance(head, Deref):
        if isinstance(current, Oid):
            yield from _match_path(
                ctx.instance.deref(current), rest, binding, ctx, derefed)
        return

    if isinstance(head, Bind):
        variable = head.variable
        if variable in binding:
            if equivalent(binding[variable], current):
                yield from _match_path(current, rest, binding, ctx, derefed)
            return
        extended = dict(binding)
        extended[variable] = current
        yield from _match_path(current, rest, extended, ctx, derefed)
        return

    if isinstance(head, SetBind):
        base = _auto_deref(current, ctx)
        if not isinstance(base, SetValue):
            return
        variable = head.variable
        if variable in binding:
            if binding[variable] in base:
                yield from _match_path(
                    binding[variable], rest, binding, ctx, derefed)
            return
        for element in base:
            extended = dict(binding)
            extended[variable] = element
            yield from _match_path(element, rest, extended, ctx, derefed)
        return

    raise EvaluationError(f"unknown path component {head!r}")


def _auto_deref(value, ctx: EvalContext):
    """Selections transparently cross the object boundary.

    The paper's examples write ``X ·title`` for an object-valued ``X``;
    the implicit dereference is structural (imposed by the query shape),
    so it does not count against the restricted path-variable semantics.
    """
    seen = 0
    while isinstance(value, Oid):
        value = ctx.instance.deref(value)
        seen += 1
        if seen > 16:
            raise EvaluationError("dereference chain too deep")
    return value


def _select_attribute(base, attribute: str) -> list:
    """Attribute selection with implicit union selectors.

    Returns 0 or 1 target values: no match is *false*, not an error
    (Section 5.3: "We will assume that each atom where this occurs is
    false.")."""
    if not isinstance(base, TupleValue):
        return []
    if base.has_attribute(attribute):
        return [base.get(attribute)]
    if base.is_marked and isinstance(base.marked_value, TupleValue):
        payload = base.marked_value
        if payload.has_attribute(attribute):
            return [payload.get(attribute)]
    return []


# ---------------------------------------------------------------------------
# Formula satisfaction
# ---------------------------------------------------------------------------


def satisfy(formula: Formula, binding: Binding,
            ctx: EvalContext) -> Iterator[Binding]:
    """Yield every extension of ``binding`` satisfying ``formula``."""
    if isinstance(formula, And):
        yield from _satisfy_and(list(formula.conjuncts), binding, ctx)
        return
    if isinstance(formula, Or):
        for disjunct in formula.disjuncts:
            yield from satisfy(disjunct, binding, ctx)
        return
    if isinstance(formula, Not):
        free = formula.child.free_variables()
        unbound = [v for v in free if v not in binding]
        if unbound:
            raise SafetyError(
                f"negation over unbound variables {unbound}")
        for _ in satisfy(formula.child, binding, ctx):
            return
        yield binding
        return
    if isinstance(formula, Exists):
        seen: set = set()
        quantified = set(formula.variables)
        for inner in satisfy(formula.body, binding, ctx):
            projected = {variable: value
                         for variable, value in inner.items()
                         if variable not in quantified}
            key = tuple(sorted(
                ((str(type(v).__name__), str(v), repr(val))
                 for v, val in projected.items())))
            if key not in seen:
                seen.add(key)
                yield projected
        return
    if isinstance(formula, Forall):
        if not isinstance(formula.body, Implies):
            raise SafetyError(
                "∀ must quantify an implication "
                "(Forall(vars, Implies(range, condition)))")
        antecedent = formula.body.antecedent
        consequent = formula.body.consequent
        for inner in satisfy(antecedent, binding, ctx):
            if not any(True for _ in satisfy(consequent, inner, ctx)):
                return
        yield binding
        return
    if isinstance(formula, Implies):
        raise SafetyError("implication is only allowed under ∀")
    if isinstance(formula, Atom):
        yield from _satisfy_atom(formula, binding, ctx)
        return
    raise QueryError(f"unknown formula {formula!r}")


def _satisfy_and(conjuncts: list[Formula], binding: Binding,
                 ctx: EvalContext) -> Iterator[Binding]:
    if not conjuncts:
        yield binding
        return
    index = _pick_ready(conjuncts, binding)
    if index is None:
        raise SafetyError(
            "no conjunct can make progress — formula is not "
            f"range-restricted; stuck on: "
            f"{'; '.join(str(c) for c in conjuncts)}")
    chosen = conjuncts[index]
    remaining = conjuncts[:index] + conjuncts[index + 1:]
    for extended in satisfy(chosen, binding, ctx):
        yield from _satisfy_and(remaining, extended, ctx)


def _pick_ready(conjuncts: list[Formula], binding: Binding) -> int | None:
    """The first conjunct that can run under the current binding."""
    # Pass 1: fully ground conjuncts (cheap checkers) run first.
    for index, conjunct in enumerate(conjuncts):
        if all(v in binding for v in conjunct.free_variables()):
            return index
    # Pass 2: binders whose requirements are met.
    for index, conjunct in enumerate(conjuncts):
        if _can_bind(conjunct, binding):
            return index
    return None


def _can_bind(formula: Formula, binding: Binding) -> bool:
    if isinstance(formula, PathAtom):
        return _is_ground(formula.root, binding)
    if isinstance(formula, Eq):
        left_ground = _is_ground(formula.left, binding)
        right_ground = _is_ground(formula.right, binding)
        if left_ground and isinstance(formula.right,
                                      (DataVar, PathVar, AttVar)):
            return True
        if right_ground and isinstance(formula.left,
                                       (DataVar, PathVar, AttVar)):
            return True
        return left_ground and right_ground
    if isinstance(formula, In):
        if not _is_ground(formula.collection, binding):
            return False
        return True  # element may be a variable or pattern to bind
    if isinstance(formula, Subset):
        return (_is_ground(formula.left, binding)
                and _is_ground(formula.right, binding))
    if isinstance(formula, Pred):
        return all(_is_ground(a, binding) for a in formula.arguments)
    if isinstance(formula, (And, Or)):
        children = (formula.conjuncts if isinstance(formula, And)
                    else formula.disjuncts)
        return all(_can_bind(child, binding) or all(
            v in binding for v in child.free_variables())
            for child in children)
    if isinstance(formula, Not):
        return all(v in binding for v in formula.free_variables())
    if isinstance(formula, (Exists, Forall)):
        body = formula.body
        if isinstance(formula, Forall):
            if not isinstance(body, Implies):
                return False
            return _can_bind_quantified(body.antecedent, binding,
                                        set(formula.variables))
        return _can_bind_quantified(body, binding, set(formula.variables))
    return False


def _can_bind_quantified(body: Formula, binding: Binding,
                         quantified: set) -> bool:
    conjuncts = (list(body.conjuncts) if isinstance(body, And)
                 else [body])
    simulated = dict(binding)
    progress = True
    while progress and conjuncts:
        progress = False
        for index, conjunct in enumerate(conjuncts):
            free = conjunct.free_variables()
            if (all(v in simulated for v in free)
                    or _can_bind(conjunct, simulated)):
                for variable in free:
                    simulated[variable] = True
                del conjuncts[index]
                progress = True
                break
    return not conjuncts


def _satisfy_atom(atom: Atom, binding: Binding,
                  ctx: EvalContext) -> Iterator[Binding]:
    if ctx.metrics is not None:
        ctx.metrics.inc("calculus.atoms")
    if isinstance(atom, PathAtom):
        root = eval_term(atom.root, binding, ctx)
        seen: set = set()
        for extended, _ in _match_path(
                root, atom.path.components, binding, ctx, frozenset()):
            key = id(extended) if extended is binding else tuple(
                sorted((str(v), repr(val))
                       for v, val in extended.items()))
            if key not in seen:
                seen.add(key)
                yield extended
        return
    if isinstance(atom, Eq):
        yield from _satisfy_eq(atom, binding, ctx)
        return
    if isinstance(atom, In):
        yield from _satisfy_in(atom, binding, ctx)
        return
    if isinstance(atom, Subset):
        left = eval_term(atom.left, binding, ctx)
        right = eval_term(atom.right, binding, ctx)
        if isinstance(left, SetValue) and isinstance(right, SetValue):
            if left.issubset(right):
                yield binding
        return
    if isinstance(atom, Pred):
        predicate = ctx.registry.predicate(atom.predicate)
        try:
            arguments = [eval_term(a, binding, ctx)
                         for a in atom.arguments]
        except EvaluationError:
            return  # wrong-branch access: the atom is false
        if predicate(ctx, *arguments):
            yield binding
        return
    raise QueryError(f"unknown atom {atom!r}")


def _satisfy_eq(atom: Eq, binding: Binding,
                ctx: EvalContext) -> Iterator[Binding]:
    left_ground = _is_ground(atom.left, binding)
    right_ground = _is_ground(atom.right, binding)
    if left_ground and right_ground:
        try:
            left = eval_term(atom.left, binding, ctx)
            right = eval_term(atom.right, binding, ctx)
        except EvaluationError:
            return  # e.g. wrong-branch path application: atom is false
        if equivalent(left, right):
            yield binding
        return
    if left_ground and isinstance(atom.right, (DataVar, PathVar, AttVar)):
        variable, ground_term = atom.right, atom.left
    elif right_ground and isinstance(atom.left,
                                     (DataVar, PathVar, AttVar)):
        variable, ground_term = atom.left, atom.right
    else:
        raise SafetyError(f"equality {atom} cannot be evaluated")
    try:
        value = eval_term(ground_term, binding, ctx)
    except EvaluationError:
        return
    extended = dict(binding)
    extended[variable] = value
    yield extended


def _satisfy_in(atom: In, binding: Binding,
                ctx: EvalContext) -> Iterator[Binding]:
    try:
        collection = eval_term(atom.collection, binding, ctx)
    except EvaluationError:
        return
    if isinstance(collection, (SetValue, ListValue)):
        members = list(collection)
    else:
        return
    element = atom.element
    if _is_ground(element, binding):
        value = eval_term(element, binding, ctx)
        if any(equivalent(value, member) for member in members):
            yield binding
        return
    if isinstance(element, (DataVar, PathVar, AttVar)):
        for member in members:
            extended = dict(binding)
            extended[element] = member
            yield extended
        return
    raise SafetyError(
        f"membership {atom}: element pattern is not supported")
