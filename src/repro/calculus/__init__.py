"""The many-sorted calculus of Section 5.2.

Three sorts — **val**, **att**, **path** — each with its own variables;
path predicates ``<v P>`` range-restrict the variables occurring on a
path.  The public pieces:

* :mod:`repro.calculus.terms` — data/attribute/path terms,
* :mod:`repro.calculus.formulas` — atoms, connectives, queries,
* :mod:`repro.calculus.functions` — interpreted functions & predicates,
* :mod:`repro.calculus.safety` — range-restriction analysis,
* :mod:`repro.calculus.evaluator` — evaluation over an instance,
* :mod:`repro.calculus.inference` — variable type inference (Section 5.3).
"""

from repro.calculus.evaluator import EvalContext, evaluate_query
from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Implies,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
    Subset,
)
from repro.calculus.functions import FunctionRegistry, default_registry
from repro.calculus.inference import infer_types
from repro.calculus.safety import check_safety
from repro.calculus.terms import (
    AttName,
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    FunTerm,
    Index,
    ListTerm,
    MethodTerm,
    Name,
    PathApply,
    PathTerm,
    PathVar,
    Sel,
    SetBind,
    SetTerm,
    TupleTerm,
)

__all__ = [
    "And", "AttName", "AttVar", "Bind", "Const", "DataVar", "Deref", "Eq",
    "EvalContext", "Exists", "Forall", "FunTerm", "FunctionRegistry",
    "Implies", "In", "Index", "ListTerm", "MethodTerm", "Name", "Not", "Or",
    "PathApply", "PathAtom", "PathTerm", "PathVar", "Pred", "Query", "Sel",
    "SetBind", "SetTerm", "Subset", "TupleTerm", "check_safety",
    "default_registry", "evaluate_query", "infer_types",
]
