"""Atoms, formulas and queries of the calculus (Section 5.2).

Atoms:

* ``Eq(t, t')``, ``In(t, t')``, ``Subset(t, t')`` — the standard atoms,
* ``PathAtom(root, path_term)`` — the path predicate ``<v P>``: it both
  *states the existence* of a concrete path instance and *range
  restricts* the variables occurring on it,
* ``Pred(name, args)`` — interpreted predicates (``contains``, ``near``,
  ``lt``, ...).

Formulas close atoms under ∧, ∨, ¬, ∃, ∀ and an implication connective
(used to make ∀ range-restricted: ``Forall(vars, Implies(range, body))``).

A :class:`Query` is ``{x1, ..., xn | φ}`` with the ``x_i`` the only free
variables of φ; its result is always a set (Section 5.2's closing
remark).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import QueryError
from repro.calculus.terms import (
    AttVar,
    DataVar,
    PathTerm,
    PathVar,
    term_variables,
)


class Formula:
    """Base class of formulas."""

    def free_variables(self) -> list:
        """Free variables in order of first appearance (no duplicates)."""
        seen: list = []
        for variable in self._free():
            if variable not in seen:
                seen.append(variable)
        return seen

    def _free(self) -> list:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and str(other) == str(self)

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


class Atom(Formula):
    """Base class of atomic formulas."""


class Eq(Atom):
    """``t = t'`` — equality modulo the ≡ equivalence."""

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def _free(self) -> list:
        return term_variables(self.left) + term_variables(self.right)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


class In(Atom):
    """``t ∈ t'`` — membership in a set or list."""

    def __init__(self, element, collection) -> None:
        self.element = element
        self.collection = collection

    def _free(self) -> list:
        return (term_variables(self.element)
                + term_variables(self.collection))

    def __str__(self) -> str:
        return f"{self.element} in {self.collection}"


class Subset(Atom):
    """``t ⊆ t'``."""

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def _free(self) -> list:
        return term_variables(self.left) + term_variables(self.right)

    def __str__(self) -> str:
        return f"{self.left} subseteq {self.right}"


class PathAtom(Atom):
    """``<root P>`` — the path predicate.

    ``root`` is a data term, ``path`` a :class:`PathTerm`.  A ground
    instance holds when the path term instantiates to a concrete path
    from the root of the value.
    """

    def __init__(self, root, path) -> None:
        self.root = root
        self.path = path if isinstance(path, PathTerm) else PathTerm(path)

    def _free(self) -> list:
        return term_variables(self.root) + self.path.variables()

    def __str__(self) -> str:
        return f"<{self.root} {self.path}>"


class Pred(Atom):
    """An interpreted predicate, e.g. ``Pred('contains', [t, pattern])``."""

    def __init__(self, predicate: str, arguments: Iterable) -> None:
        self.predicate = predicate
        self.arguments = tuple(arguments)

    def _free(self) -> list:
        return [v for a in self.arguments for v in term_variables(a)]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        return f"{self.predicate}({inner})"


# ---------------------------------------------------------------------------
# Connectives
# ---------------------------------------------------------------------------


class And(Formula):
    """Conjunction (nested conjunctions are flattened)."""

    def __init__(self, *conjuncts: Formula) -> None:
        flat: list[Formula] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, And):
                flat.extend(conjunct.conjuncts)
            else:
                flat.append(conjunct)
        if not flat:
            raise QueryError("And() needs at least one conjunct")
        self.conjuncts = tuple(flat)

    def _free(self) -> list:
        return [v for f in self.conjuncts for v in f._free()]

    def __str__(self) -> str:
        return " ∧ ".join(f"({f})" for f in self.conjuncts)


class Or(Formula):
    """Disjunction (nested disjunctions are flattened)."""

    def __init__(self, *disjuncts: Formula) -> None:
        flat: list[Formula] = []
        for disjunct in disjuncts:
            if isinstance(disjunct, Or):
                flat.extend(disjunct.disjuncts)
            else:
                flat.append(disjunct)
        if not flat:
            raise QueryError("Or() needs at least one disjunct")
        self.disjuncts = tuple(flat)

    def _free(self) -> list:
        return [v for f in self.disjuncts for v in f._free()]

    def __str__(self) -> str:
        return " ∨ ".join(f"({f})" for f in self.disjuncts)


class Not(Formula):
    """Negation; its free variables must be restricted elsewhere."""

    def __init__(self, child: Formula) -> None:
        self.child = child

    def _free(self) -> list:
        return self.child._free()

    def __str__(self) -> str:
        return f"¬({self.child})"


class Implies(Formula):
    """``antecedent → consequent`` — used under ∀."""

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        self.antecedent = antecedent
        self.consequent = consequent

    def _free(self) -> list:
        return self.antecedent._free() + self.consequent._free()

    def __str__(self) -> str:
        return f"({self.antecedent}) → ({self.consequent})"


class _Quantifier(Formula):
    symbol = "?"

    def __init__(self, variables, body: Formula) -> None:
        if not isinstance(variables, (list, tuple)):
            variables = [variables]
        for variable in variables:
            if not isinstance(variable, (DataVar, PathVar, AttVar)):
                raise QueryError(
                    f"cannot quantify over {variable!r}")
        if not variables:
            raise QueryError("quantifier needs at least one variable")
        self.variables = tuple(variables)
        self.body = body

    def _free(self) -> list:
        bound = set(self.variables)
        return [v for v in self.body._free() if v not in bound]

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.variables)
        return f"{self.symbol}{names}({self.body})"


class Exists(_Quantifier):
    """``∃ x̄ (φ)``."""

    symbol = "∃"


class Forall(_Quantifier):
    """``∀ x̄ (range → condition)``."""

    symbol = "∀"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class Query:
    """``{x1, ..., xn | φ}`` — result is a set.

    With one head variable the result is a set of its values; with
    several, a set of ordered tuples with one attribute per variable
    (named after the variable), matching Section 4.3's description of
    path-expression results.
    """

    def __init__(self, head, formula: Formula) -> None:
        if not isinstance(head, (list, tuple)):
            head = [head]
        if not head:
            raise QueryError("query needs at least one head variable")
        for variable in head:
            if not isinstance(variable, (DataVar, PathVar, AttVar)):
                raise QueryError(f"bad head variable {variable!r}")
        self.head = tuple(head)
        self.formula = formula
        free = formula.free_variables()
        missing = [v for v in self.head if v not in free]
        if missing:
            raise QueryError(
                f"head variables {missing} do not occur in the formula")
        extra = [v for v in free if v not in self.head]
        if extra:
            raise QueryError(
                f"free variables {extra} are not in the query head; "
                "quantify them explicitly")

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.head)
        return f"{{{names} | {self.formula}}}"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and str(other) == str(self)

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)
