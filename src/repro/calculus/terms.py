"""Terms of the three-sorted calculus (Section 5.2).

* **Attribute terms** — an attribute name or an attribute variable.
* **Path terms** — sequences of components: path variables, ``.A``
  selections, ``[i]`` indexings, ``->`` dereferences, value bindings
  ``P(X)`` and set bindings ``P{X}``.
* **Data terms** — persistent-root names, constants, data variables,
  constructed tuples/lists/sets, method applications, interpreted
  function applications, and path applications ``t P``.

The paper's worked example reads, in this API::

    Knuth_Books P ·volumes[2] Q ·chapters[3] (X)

    PathApply(Name('Knuth_Books'), PathTerm([
        PathVar('P'), Sel('volumes'), Index(2),
        PathVar('Q'), Sel('chapters'), Index(3), Bind(DataVar('X'))]))
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import QueryError


class _Node:
    """Shared equality/hash for term nodes."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


# ---------------------------------------------------------------------------
# Variables (one alphabet per sort)
# ---------------------------------------------------------------------------


class DataVar(_Node):
    """A variable of sort **val** (written X, Y, Z in the paper)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


class PathVar(_Node):
    """A variable of sort **path** (written P, Q, R)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


class AttVar(_Node):
    """A variable of sort **att** (written A, B, C)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


Variable = (DataVar, PathVar, AttVar)


# ---------------------------------------------------------------------------
# Attribute terms
# ---------------------------------------------------------------------------


class AttName(_Node):
    """A literal attribute name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


AttTerm = (AttName, AttVar)


# ---------------------------------------------------------------------------
# Path term components
# ---------------------------------------------------------------------------


class Sel(_Node):
    """``·A`` — attribute selection by an attribute term.

    ``Sel('title')`` is sugar for ``Sel(AttName('title'))``.
    """

    def __init__(self, attribute) -> None:
        if isinstance(attribute, str):
            attribute = AttName(attribute)
        if not isinstance(attribute, AttTerm):
            raise QueryError(
                f"Sel needs an attribute term, got {attribute!r}")
        self.attribute = attribute

    def __str__(self) -> str:
        return f".{self.attribute}"


class Index(_Node):
    """``[i]`` — indexing by an integer constant or a data variable."""

    def __init__(self, index) -> None:
        if not isinstance(index, (int, DataVar)) or isinstance(index, bool):
            raise QueryError(
                f"Index needs an int or a data variable, got {index!r}")
        self.index = index

    def __str__(self) -> str:
        return f"[{self.index}]"


class Deref(_Node):
    """``->`` — dereference."""

    def __str__(self) -> str:
        return "->"


class Bind(_Node):
    """``(X)`` — bind the current value to a data variable."""

    def __init__(self, variable: DataVar) -> None:
        if not isinstance(variable, DataVar):
            raise QueryError(f"Bind needs a data variable, got {variable!r}")
        self.variable = variable

    def __str__(self) -> str:
        return f"({self.variable})"


class SetBind(_Node):
    """``{X}`` — choose an element of the current set, binding X."""

    def __init__(self, variable: DataVar) -> None:
        if not isinstance(variable, DataVar):
            raise QueryError(
                f"SetBind needs a data variable, got {variable!r}")
        self.variable = variable

    def __str__(self) -> str:
        return f"{{{self.variable}}}"


PathComponent = (PathVar, Sel, Index, Deref, Bind, SetBind)


class PathTerm(_Node):
    """A sequence of path components (concatenation flattens)."""

    def __init__(self, components: Iterable = ()) -> None:
        flat: list = []
        for component in components:
            if isinstance(component, PathTerm):
                flat.extend(component.components)
            elif isinstance(component, str):
                flat.append(Sel(component))
            elif isinstance(component, PathComponent):
                flat.append(component)
            else:
                raise QueryError(
                    f"not a path component: {component!r}")
        self.components = tuple(flat)

    def __add__(self, other: "PathTerm") -> "PathTerm":
        return PathTerm(self.components + other.components)

    def __len__(self) -> int:
        return len(self.components)

    def variables(self) -> list:
        """Every variable occurring in the term, in order."""
        found = []
        for component in self.components:
            if isinstance(component, PathVar):
                found.append(component)
            elif isinstance(component, Sel) and isinstance(
                    component.attribute, AttVar):
                found.append(component.attribute)
            elif isinstance(component, Index) and isinstance(
                    component.index, DataVar):
                found.append(component.index)
            elif isinstance(component, (Bind, SetBind)):
                found.append(component.variable)
        return found

    def __str__(self) -> str:
        return " ".join(str(component) for component in self.components)


# ---------------------------------------------------------------------------
# Data terms
# ---------------------------------------------------------------------------


class Name(_Node):
    """A persistent-root name (an element of G)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


class Const(_Node):
    """A constant value (atomic, nil, an oid, or any model value)."""

    def __init__(self, value: object) -> None:
        self.value = value

    def __str__(self) -> str:
        return repr(self.value)


class TupleTerm(_Node):
    """``[A1: t1, ..., An: tn]`` — constructed ordered tuple."""

    def __init__(self, fields: Iterable[tuple[object, object]]) -> None:
        frozen = []
        for attribute, term in fields:
            if isinstance(attribute, str):
                attribute = AttName(attribute)
            frozen.append((attribute, term))
        self.fields = tuple(frozen)

    def __str__(self) -> str:
        inner = ", ".join(f"{a}: {t}" for a, t in self.fields)
        return f"[{inner}]"


class ListTerm(_Node):
    """``[t1, ..., tn]`` — constructed list."""

    def __init__(self, items: Iterable) -> None:
        self.items = tuple(items)

    def __str__(self) -> str:
        return "[" + ", ".join(str(t) for t in self.items) + "]"


class SetTerm(_Node):
    """``{t1, ..., tn}`` — constructed set."""

    def __init__(self, items: Iterable) -> None:
        self.items = tuple(items)

    def __str__(self) -> str:
        return "{" + ", ".join(str(t) for t in self.items) + "}"


class MethodTerm(_Node):
    """``m(t1, ..., tn)`` — method application; the first argument is the
    receiver."""

    def __init__(self, method: str, arguments: Iterable) -> None:
        self.method = method
        self.arguments = tuple(arguments)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.arguments)
        return f"{self.method}({inner})"


class FunTerm(_Node):
    """``f(t1, ..., tn)`` — interpreted function application
    (``length``, ``name``, ``set_to_list``...)."""

    def __init__(self, function: str, arguments: Iterable) -> None:
        self.function = function
        self.arguments = tuple(arguments)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.arguments)
        return f"{self.function}({inner})"


class PathApply(_Node):
    """``t P`` — the value reached from ``t`` by following ``P``.

    Only usable as a data term when ``P`` is ground at evaluation time;
    path predicates (:class:`~repro.calculus.formulas.PathAtom`) are the
    binding construct.
    """

    def __init__(self, root, path: PathTerm) -> None:
        self.root = root
        self.path = path if isinstance(path, PathTerm) else PathTerm(path)

    def __str__(self) -> str:
        return f"{self.root} {self.path}"


DataTerm = (Name, Const, DataVar, TupleTerm, ListTerm, SetTerm,
            MethodTerm, FunTerm, PathApply)


def term_variables(term) -> list:
    """Every variable occurring in a term, in order of appearance."""
    if isinstance(term, (DataVar, PathVar, AttVar)):
        return [term]
    if isinstance(term, (Name, Const, AttName)):
        return []
    if isinstance(term, TupleTerm):
        found = []
        for attribute, sub in term.fields:
            if isinstance(attribute, AttVar):
                found.append(attribute)
            found.extend(term_variables(sub))
        return found
    if isinstance(term, (ListTerm, SetTerm)):
        return [v for sub in term.items for v in term_variables(sub)]
    if isinstance(term, (MethodTerm, FunTerm)):
        return [v for sub in term.arguments for v in term_variables(sub)]
    if isinstance(term, PathApply):
        return term_variables(term.root) + term.path.variables()
    if isinstance(term, PathTerm):
        return term.variables()
    from repro.calculus.formulas import Query
    if isinstance(term, Query):
        return []  # a nested query is closed — it has no free variables
    raise QueryError(f"not a term: {term!r}")
