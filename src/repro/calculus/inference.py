"""Variable type inference (Section 5.3).

"Typing is essentially a consequence of range restriction": once the
range of a variable is known it determines its type.  Path and attribute
variables introduce polymorphism — a data variable bound through a path
variable may reach values of many types, and its inferred type is then a
**marked union with system-supplied markers** α1, α2, ... exactly as the
paper describes for the ``Knuth_Books`` example.

The inference walks path predicates at the *type* level, mirroring the
evaluator's value-level walk:

* attribute selections descend into tuples and union branches (with the
  implicit-selector convention);
* index steps cross list types (and view ordered tuples as
  heterogeneous lists);
* path variables expand to every schema path from the current type;
* a path predicate with **no** type-level match is a static type error
  (Section 5.3: "if no alternative of the type union has an attribute
  review, this leads to a type error").

The PATH and ATT sorts are reported with the sentinel types
:data:`PATH_SORT` and :data:`ATT_SORT`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import QueryTypeError
from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Formula,
    Implies,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
    Subset,
)
from repro.calculus.terms import (
    AttName,
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    Index,
    Name,
    PathVar,
    Sel,
    SetBind,
)
from repro.oodb.schema import Schema
from repro.oodb.types import (
    AnyType,
    BOOLEAN,
    ClassType,
    FLOAT,
    INTEGER,
    ListType,
    STRING,
    SetType,
    TupleType,
    Type,
    UnionType,
)
from repro.oodb.values import Nil, Oid
from repro.paths.schema_paths import enumerate_schema_paths


class SortType(Type):
    """A sentinel 'type' for the PATH and ATT sorts."""

    def __init__(self, sort: str) -> None:
        object.__setattr__(self, "sort", sort)

    def __setattr__(self, key, value):
        raise AttributeError("SortType is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortType) and other.sort == self.sort

    def __hash__(self) -> int:
        return hash(("sort", self.sort))

    def __str__(self) -> str:
        return self.sort


PATH_SORT = SortType("PATH")
ATT_SORT = SortType("ATT")

#: Fallback for data variables bound by constructs the inference cannot
#: type precisely (e.g. equality with an interpreted-function result).
#: Distinct from *no* binder at all, which stays a type error.
VAL_SORT = SortType("VAL")

#: Cap on inferred union width before the "combinatorial explosion" the
#: paper warns about is reported as a type error.
MAX_UNION_WIDTH = 64


def infer_types(query: Query, schema: Schema) -> dict:
    """Infer a type for every variable of the query.

    Returns ``{variable: Type}`` — data variables get model types (a
    system-marked union when several candidates exist), path variables
    :data:`PATH_SORT`, attribute variables :data:`ATT_SORT`.
    """
    candidates: dict = {}
    _walk_formula(query.formula, schema, candidates)
    result: dict = {}
    for variable in query.formula.free_variables():
        result[variable] = _resolve(variable, candidates)
    for variable, kinds in candidates.items():
        if variable not in result:
            result[variable] = _resolve(variable, candidates)
    return result


def _resolve(variable, candidates: dict) -> Type:
    if isinstance(variable, PathVar):
        return PATH_SORT
    if isinstance(variable, AttVar):
        return ATT_SORT
    found = candidates.get(variable, [])
    unique: list[Type] = []
    for tp in found:
        if tp not in unique:
            unique.append(tp)
    if not unique:
        raise QueryTypeError(
            f"no type could be inferred for variable {variable}")
    if len(unique) == 1:
        return unique[0]
    if len(unique) > MAX_UNION_WIDTH:
        raise QueryTypeError(
            f"variable {variable} has {len(unique)} candidate types — "
            "the union explosion the typing rules forbid")
    return UnionType([(f"alpha{i + 1}", tp)
                      for i, tp in enumerate(unique)])


def _note(candidates: dict, variable, tp: Type) -> None:
    candidates.setdefault(variable, []).append(tp)


def _walk_formula(formula: Formula, schema: Schema,
                  candidates: dict) -> None:
    if isinstance(formula, And):
        for conjunct in formula.conjuncts:
            _walk_formula(conjunct, schema, candidates)
    elif isinstance(formula, Or):
        for disjunct in formula.disjuncts:
            _walk_formula(disjunct, schema, candidates)
    elif isinstance(formula, Not):
        _walk_formula(formula.child, schema, candidates)
    elif isinstance(formula, (Exists, Forall)):
        _walk_formula(formula.body, schema, candidates)
    elif isinstance(formula, Implies):
        _walk_formula(formula.antecedent, schema, candidates)
        _walk_formula(formula.consequent, schema, candidates)
    elif isinstance(formula, PathAtom):
        _walk_path_atom(formula, schema, candidates)
    elif isinstance(formula, Eq):
        _walk_eq(formula, schema, candidates)
    elif isinstance(formula, In):
        _walk_in(formula, schema, candidates)
    elif isinstance(formula, (Subset, Pred)):
        return
    else:  # pragma: no cover
        return


def _walk_eq(atom: Eq, schema: Schema, candidates: dict) -> None:
    for variable, other in ((atom.left, atom.right),
                            (atom.right, atom.left)):
        if not isinstance(variable, DataVar):
            continue
        inferred = _term_type(other, schema, candidates)
        _note(candidates, variable, inferred or VAL_SORT)


def _walk_in(atom: In, schema: Schema, candidates: dict) -> None:
    if not isinstance(atom.element, DataVar):
        return
    collection = _term_type(atom.collection, schema, candidates)
    if isinstance(collection, (ListType, SetType)):
        _note(candidates, atom.element, collection.element)
    elif isinstance(collection, UnionType):
        # implicit selectors: the collection may sit behind markers
        for _, branch in collection.branches:
            if isinstance(branch, (ListType, SetType)):
                _note(candidates, atom.element, branch.element)
    else:
        _note(candidates, atom.element, VAL_SORT)


#: Result types of interpreted functions the inference understands.
_FUNCTION_RESULTS = {
    "length": INTEGER, "count": INTEGER,
    "name": STRING, "text": STRING,
}


def _term_type(term, schema: Schema, candidates: dict) -> Type | None:
    """Best-effort type of a data term; ``None`` when unknown."""
    from repro.calculus.formulas import Query as _Query
    from repro.calculus.terms import (
        FunTerm, ListTerm, PathApply, SetTerm, TupleTerm)

    if isinstance(term, Const):
        return _const_type(term.value)
    if isinstance(term, Name):
        return schema.root_type(term.name)
    if isinstance(term, DataVar):
        found = candidates.get(term)
        return found[0] if found else None
    if isinstance(term, TupleTerm):
        fields = []
        for attribute, sub in term.fields:
            if not isinstance(attribute, AttName):
                return None
            sub_type = _term_type(sub, schema, candidates)
            fields.append((attribute.name, sub_type or VAL_SORT))
        return TupleType(fields)
    if isinstance(term, ListTerm):
        return None if not term.items else ListType(
            _term_type(term.items[0], schema, candidates) or VAL_SORT)
    if isinstance(term, SetTerm):
        return None if not term.items else SetType(
            _term_type(term.items[0], schema, candidates) or VAL_SORT)
    if isinstance(term, FunTerm):
        known = _FUNCTION_RESULTS.get(term.function)
        if known is not None:
            return known
        if term.function in ("first", "last", "element") and term.arguments:
            inner = _term_type(term.arguments[0], schema, candidates)
            if isinstance(inner, (ListType, SetType)):
                return inner.element
        if term.function == "set_to_list" and term.arguments:
            inner = _term_type(term.arguments[0], schema, candidates)
            if isinstance(inner, SetType):
                return ListType(inner.element)
        return None
    if isinstance(term, PathApply):
        root_type = _term_type(term.root, schema, candidates)
        if root_type is None:
            return None
        targets = [match_target for match_target in _apply_targets(
            root_type, list(term.path.components), schema)]
        unique: list[Type] = []
        for target in targets:
            if target not in unique:
                unique.append(target)
        if not unique:
            return None
        if len(unique) == 1:
            return unique[0]
        return UnionType([(f"alpha{i + 1}", tp)
                          for i, tp in enumerate(unique)])
    if isinstance(term, _Query):
        return None
    return None


def _apply_targets(root_type: Type, components: list,
                   schema: Schema) -> list[Type]:
    """Types reachable by a (possibly variable-free) path application."""
    return list(_match_types_with_target(root_type, components, schema))


def _match_types_with_target(current: Type, components: list,
                             schema: Schema) -> Iterator[Type]:
    if not components:
        yield current
        return
    head, rest = components[0], components[1:]
    if isinstance(head, Sel) and isinstance(head.attribute, AttName):
        for base in _deref_type(current, schema):
            for target in _attr_targets(base, head.attribute.name):
                yield from _match_types_with_target(target, rest, schema)
        return
    if isinstance(head, Index):
        for base in _deref_type(current, schema):
            if isinstance(base, ListType):
                yield from _match_types_with_target(
                    base.element, rest, schema)
            elif isinstance(base, TupleType):
                for name, field in base.fields:
                    yield from _match_types_with_target(
                        TupleType([(name, field)]), rest, schema)
        return
    if isinstance(head, Deref):
        if isinstance(current, (ClassType, AnyType)):
            for base in _deref_type(current, schema):
                yield from _match_types_with_target(base, rest, schema)
        return
    if isinstance(head, (Bind, SetBind)):
        if isinstance(head, SetBind):
            for base in _deref_type(current, schema):
                if isinstance(base, SetType):
                    yield from _match_types_with_target(
                        base.element, rest, schema)
            return
        yield from _match_types_with_target(current, rest, schema)
        return
    if isinstance(head, PathVar):
        for schema_path in enumerate_schema_paths(schema, current):
            yield from _match_types_with_target(
                schema_path.target, rest, schema)
        return
    return


def _const_type(value: object) -> Type | None:
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if isinstance(value, Oid):
        return ClassType(value.class_name)
    if isinstance(value, Nil):
        return None
    return None


def _walk_path_atom(atom: PathAtom, schema: Schema,
                    candidates: dict) -> None:
    root_type = _root_type(atom.root, schema, candidates)
    if root_type is None:
        return
    matches = list(_match_types(root_type, list(atom.path.components),
                                schema, {}))
    if not matches:
        raise QueryTypeError(
            f"path predicate {atom} can never hold: no structure in the "
            "schema matches the path")
    for match in matches:
        for variable, tp in match.items():
            _note(candidates, variable, tp)


def _root_type(root, schema: Schema, candidates: dict) -> Type | None:
    if isinstance(root, Name):
        return schema.root_type(root.name)
    if isinstance(root, Const):
        return _const_type(root.value)
    if isinstance(root, DataVar):
        found = candidates.get(root)
        if found:
            # Use the first candidate; chained predicates refine later.
            return found[0]
        return None
    return None


_MAX_TYPE_MATCHES = 10_000


def _match_types(current: Type, components: list, schema: Schema,
                 assignment: dict) -> Iterator[dict]:
    """Type-level analogue of the evaluator's path matching."""
    if not components:
        yield dict(assignment)
        return
    head, rest = components[0], components[1:]

    if isinstance(head, PathVar):
        for schema_path in enumerate_schema_paths(schema, current):
            extended = dict(assignment)
            extended[head] = PATH_SORT
            yield from _match_types(
                schema_path.target, rest, schema, extended)
        return

    if isinstance(head, Sel):
        base = _deref_type(current, schema)
        for base_type in base:
            attribute = head.attribute
            if isinstance(attribute, AttName):
                for target in _attr_targets(base_type, attribute.name):
                    yield from _match_types(target, rest, schema,
                                            assignment)
            else:
                extended = dict(assignment)
                extended[attribute] = ATT_SORT
                for name, target in _all_attr_targets(base_type):
                    yield from _match_types(target, rest, schema,
                                            extended)
        return

    if isinstance(head, Index):
        for base_type in _deref_type(current, schema):
            extended = assignment
            if isinstance(head.index, DataVar):
                extended = dict(assignment)
                extended[head.index] = INTEGER
            if isinstance(base_type, ListType):
                yield from _match_types(
                    base_type.element, rest, schema, extended)
            elif isinstance(base_type, TupleType):
                # heterogeneous-list view: element type is the union of
                # one-field tuples
                for name, field in base_type.fields:
                    yield from _match_types(
                        TupleType([(name, field)]), rest, schema,
                        extended)
            elif isinstance(base_type, UnionType):
                # positional access skips the marker when the branch is
                # a tuple (Important Omissions); otherwise it indexes
                # the one-field wrapper itself
                for marker, branch in base_type.branches:
                    if isinstance(branch, TupleType):
                        for name, field in branch.fields:
                            yield from _match_types(
                                TupleType([(name, field)]), rest,
                                schema, extended)
                    else:
                        yield from _match_types(
                            TupleType([(marker, branch)]), rest,
                            schema, extended)
        return

    if isinstance(head, Deref):
        if isinstance(current, ClassType):
            for class_name in schema.hierarchy.subclasses(current.name):
                yield from _match_types(
                    schema.structure(class_name), rest, schema,
                    assignment)
        elif isinstance(current, AnyType):
            for class_name in schema.hierarchy.class_names:
                yield from _match_types(
                    schema.structure(class_name), rest, schema,
                    assignment)
        return

    if isinstance(head, Bind):
        extended = dict(assignment)
        extended[head.variable] = current
        yield from _match_types(current, rest, schema, extended)
        return

    if isinstance(head, SetBind):
        for base_type in _deref_type(current, schema):
            if isinstance(base_type, SetType):
                extended = dict(assignment)
                extended[head.variable] = base_type.element
                yield from _match_types(
                    base_type.element, rest, schema, extended)
        return

    return


def _deref_type(tp: Type, schema: Schema) -> list[Type]:
    """The structural type(s) behind a possibly class-typed position."""
    if isinstance(tp, ClassType):
        return [schema.structure(class_name)
                for class_name in schema.hierarchy.subclasses(tp.name)]
    if isinstance(tp, AnyType):
        return [schema.structure(class_name)
                for class_name in schema.hierarchy.class_names]
    return [tp]


def _attr_targets(tp: Type, attribute: str) -> list[Type]:
    if isinstance(tp, TupleType):
        if tp.has_attribute(attribute):
            return [tp.field_type(attribute)]
        return []
    if isinstance(tp, UnionType):
        targets: list[Type] = []
        if tp.has_marker(attribute):
            targets.append(tp.branch_type(attribute))
        # implicit selector: branches whose payload carries the attribute
        for marker, branch in tp.branches:
            if marker == attribute:
                continue
            if isinstance(branch, TupleType) and branch.has_attribute(
                    attribute):
                targets.append(branch.field_type(attribute))
        return targets
    return []


def _all_attr_targets(tp: Type) -> list[tuple[str, Type]]:
    """Every (name, target) an attribute variable can value over —
    markers of a union *and* the attributes its tuple branches carry
    (the implicit selectors), mirroring :func:`_attr_targets`."""
    if isinstance(tp, TupleType):
        return list(tp.fields)
    if isinstance(tp, UnionType):
        pairs = list(tp.branches)
        for _, branch in tp.branches:
            if isinstance(branch, TupleType):
                pairs.extend(branch.fields)
        return pairs
    return []
