"""Interpreted functions and predicates (Section 5.2).

The calculus "uses interpreted functions and predicates in the style of
[3]"; the registry below carries the ones the paper names — ``contains``
and ``near`` for information retrieval, ``length`` and ``name`` for the
path/attribute sorts, ``set_to_list``/``sort_by`` for list results — plus
the comparison predicates the examples use (``I < J``).

Every entry receives the :class:`~repro.calculus.evaluator.EvalContext`
first, so predicates like ``contains`` can apply the ``text()`` inverse
mapping when handed a logical object instead of a string (Section 4.2).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import EvaluationError
from repro.mapping.text_inverse import text_of
from repro.oodb.values import ListValue, Oid, SetValue, TupleValue
from repro.paths.pathops import (
    path_concat,
    path_length,
    path_project,
    path_startswith,
)
from repro.paths.steps import Path
from repro.text import predicates as text_predicates


class FunctionRegistry:
    """Named interpreted functions and predicates."""

    def __init__(self) -> None:
        self._functions: dict[str, Callable] = {}
        self._predicates: dict[str, Callable] = {}

    def register_function(self, name: str, implementation: Callable) -> None:
        self._functions[name] = implementation

    def register_predicate(self, name: str, implementation: Callable) -> None:
        self._predicates[name] = implementation

    def function(self, name: str) -> Callable:
        try:
            return self._functions[name]
        except KeyError:
            raise EvaluationError(
                f"unknown interpreted function {name!r}") from None

    def predicate(self, name: str) -> Callable:
        try:
            return self._predicates[name]
        except KeyError:
            raise EvaluationError(
                f"unknown interpreted predicate {name!r}") from None

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def has_predicate(self, name: str) -> bool:
        return name in self._predicates


def _as_text(ctx, value: object) -> object:
    """Strings pass through; logical objects go through ``text()``."""
    if isinstance(value, str):
        return value
    if isinstance(value, (Oid, TupleValue, ListValue, SetValue)):
        return text_of(value, ctx.instance, ctx.provenance)
    return value


def _contains(ctx, value: object, pattern: object) -> bool:
    return text_predicates.contains(_as_text(ctx, value), pattern)


def _near(ctx, value: object, first: str, second: str,
          distance: int = 5) -> bool:
    return text_predicates.near(_as_text(ctx, value), first, second,
                                distance)


def _text(ctx, value: object) -> str:
    return text_of(value, ctx.instance, ctx.provenance)


def _name(ctx, attribute: object) -> str:
    """``name(A)`` — the attribute's name as a string."""
    if isinstance(attribute, str):
        return attribute
    raise EvaluationError(f"name() expects an attribute, got {attribute!r}")


def _comparable(value: object) -> object:
    if isinstance(value, (int, float, str)) and not isinstance(value, bool):
        return value
    raise EvaluationError(f"cannot compare {value!r}")


def _lt(ctx, left, right) -> bool:
    return _comparable(left) < _comparable(right)


def _le(ctx, left, right) -> bool:
    return _comparable(left) <= _comparable(right)


def _gt(ctx, left, right) -> bool:
    return _comparable(left) > _comparable(right)


def _ge(ctx, left, right) -> bool:
    return _comparable(left) >= _comparable(right)


def _neq(ctx, left, right) -> bool:
    from repro.oodb.values import equivalent
    return not equivalent(left, right)


def _set_to_list(ctx, value) -> ListValue:
    if isinstance(value, SetValue):
        return ListValue(value)
    if isinstance(value, ListValue):
        return value
    raise EvaluationError(f"set_to_list() expects a set, got {value!r}")


def _sort_by(ctx, value, attribute: str) -> ListValue:
    if not isinstance(value, (SetValue, ListValue)):
        raise EvaluationError("sort_by() expects a collection")
    def key(item):
        if isinstance(item, TupleValue) and item.has_attribute(attribute):
            return item.get(attribute)
        raise EvaluationError(
            f"sort_by: element {item!r} has no attribute {attribute!r}")
    return ListValue(sorted(value, key=key))


def _first(ctx, value) -> object:
    if isinstance(value, ListValue) and len(value):
        return value[0]
    raise EvaluationError("first() expects a non-empty list")


def _last(ctx, value) -> object:
    if isinstance(value, ListValue) and len(value):
        return value[-1]
    raise EvaluationError("last() expects a non-empty list")


def _count(ctx, value) -> int:
    if isinstance(value, (ListValue, SetValue)):
        return len(value)
    raise EvaluationError("count() expects a collection")


def _length(ctx, value) -> int:
    if isinstance(value, Path):
        return path_length(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (ListValue, SetValue)):
        return len(value)
    raise EvaluationError(f"length() cannot apply to {value!r}")


def _project(ctx, path, start: int, end: int):
    return path_project(path, start, end)


def _startswith(ctx, path, prefix) -> bool:
    return path_startswith(path, prefix)


def _concat(ctx, left, right):
    if isinstance(left, Path) and isinstance(right, Path):
        return path_concat(left, right)
    if isinstance(left, str) and isinstance(right, str):
        return left + right
    if isinstance(left, ListValue) and isinstance(right, ListValue):
        return left + right
    raise EvaluationError(
        f"concat() cannot apply to {left!r} and {right!r}")


def _element(ctx, value) -> object:
    """``element(q)`` — the single element of a singleton collection."""
    if isinstance(value, (SetValue, ListValue)) and len(value) == 1:
        return next(iter(value))
    size = (len(value) if isinstance(value, (SetValue, ListValue))
            else repr(value))
    raise EvaluationError(
        f"element() expects a singleton collection, got {size} "
        "elements")


def _set_union(ctx, left, right) -> SetValue:
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        return left.union(right)
    raise EvaluationError("set_union() expects two sets")


def _set_intersection(ctx, left, right) -> SetValue:
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        return left.intersection(right)
    raise EvaluationError("set_intersection() expects two sets")


def _set_difference(ctx, left, right) -> SetValue:
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        return left.difference(right)
    raise EvaluationError("set_difference() expects two sets")


def _exists(ctx, value) -> bool:
    if isinstance(value, (SetValue, ListValue)):
        return len(value) > 0
    raise EvaluationError("exists() expects a collection")


def default_registry() -> FunctionRegistry:
    """The registry with every built-in function and predicate."""
    registry = FunctionRegistry()
    registry.register_function("length", _length)
    registry.register_function("name", _name)
    registry.register_function("project", _project)
    registry.register_function("concat", _concat)
    registry.register_function("set_to_list", _set_to_list)
    registry.register_function("sort_by", _sort_by)
    registry.register_function("first", _first)
    registry.register_function("last", _last)
    registry.register_function("count", _count)
    registry.register_function("text", _text)
    registry.register_function("element", _element)
    registry.register_function("set_union", _set_union)
    registry.register_function("set_intersection", _set_intersection)
    registry.register_function("set_difference", _set_difference)
    registry.register_predicate("exists", _exists)
    registry.register_predicate("contains", _contains)
    registry.register_predicate("near", _near)
    registry.register_predicate("startswith", _startswith)
    registry.register_predicate("lt", _lt)
    registry.register_predicate("le", _le)
    registry.register_predicate("gt", _gt)
    registry.register_predicate("ge", _ge)
    registry.register_predicate("neq", _neq)
    return registry
