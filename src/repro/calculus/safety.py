"""Range-restriction analysis (Section 5.2, "Range-Restriction").

All variables in a formula must be range-restricted: a path or attribute
variable when it occurs in a path from a persistence root or from an
already-restricted variable; a data variable through path predicates,
``X = ground`` equalities, or ``X ∈ ground`` memberships.

:func:`check_safety` simulates the binding propagation statically (the
same greedy strategy the evaluator uses) and raises
:class:`~repro.errors.SafetyError` when some conjunct can never run or a
head variable is never bound.
"""

from __future__ import annotations

from repro.errors import SafetyError
from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Formula,
    Implies,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
    Subset,
)
from repro.calculus.terms import (
    AttVar,
    DataVar,
    PathVar,
    term_variables,
)

_VARS = (DataVar, PathVar, AttVar)


def check_safety(query: Query) -> None:
    """Raise :class:`SafetyError` unless the query is range-restricted."""
    bound = _analyse(query.formula, frozenset())
    unbound_head = [v for v in query.head if v not in bound]
    if unbound_head:
        raise SafetyError(
            f"head variables {unbound_head} are not range-restricted")


def _analyse(formula: Formula, bound: frozenset) -> frozenset:
    """Variables guaranteed bound after satisfying ``formula``."""
    if isinstance(formula, And):
        return _analyse_and(list(formula.conjuncts), bound)
    if isinstance(formula, Or):
        results = [_analyse(d, bound) for d in formula.disjuncts]
        merged = results[0]
        for result in results[1:]:
            merged &= result
        return merged
    if isinstance(formula, Not):
        unbound = [v for v in formula.child.free_variables()
                   if v not in bound]
        if unbound:
            raise SafetyError(
                f"variables {unbound} under negation are not "
                "range-restricted")
        _analyse(formula.child, bound)
        return bound
    if isinstance(formula, Exists):
        inner = _analyse(formula.body, bound)
        missing = [v for v in formula.variables if v not in inner]
        if missing:
            raise SafetyError(
                f"existential variables {missing} are not "
                "range-restricted")
        return inner - frozenset(formula.variables)
    if isinstance(formula, Forall):
        if not isinstance(formula.body, Implies):
            raise SafetyError(
                "∀ must quantify an implication "
                "(Forall(vars, Implies(range, condition)))")
        after_range = _analyse(formula.body.antecedent, bound)
        missing = [v for v in formula.variables if v not in after_range]
        if missing:
            raise SafetyError(
                f"universal variables {missing} are not restricted by "
                "the antecedent")
        unbound = [v for v in formula.body.consequent.free_variables()
                   if v not in after_range]
        if unbound:
            raise SafetyError(
                f"variables {unbound} in the ∀-consequent are not "
                "range-restricted")
        _analyse(formula.body.consequent, after_range)
        return bound
    if isinstance(formula, Implies):
        raise SafetyError("implication is only allowed under ∀")
    return _analyse_atom(formula, bound)


def _analyse_and(conjuncts: list[Formula], bound: frozenset) -> frozenset:
    pending = list(conjuncts)
    current = bound
    while pending:
        for index, conjunct in enumerate(pending):
            advanced = _try_atom(conjunct, current)
            if advanced is not None:
                current = advanced
                del pending[index]
                break
        else:
            raise SafetyError(
                "conjunction is not range-restricted; stuck on: "
                + "; ".join(str(c) for c in pending))
    return current


def _try_atom(formula: Formula, bound: frozenset) -> frozenset | None:
    """The bound set after this conjunct, or None if it cannot run yet."""
    try:
        if isinstance(formula, (And, Or, Not, Exists, Forall, Implies)):
            free = formula.free_variables()
            if isinstance(formula, (And, Or, Exists)):
                return _analyse(formula, bound)
            if all(v in bound for v in free) or isinstance(
                    formula, Forall):
                return _analyse(formula, bound)
            return None
        return _analyse_atom(formula, bound, tentative=True)
    except SafetyError:
        return None


def _analyse_atom(formula: Formula, bound: frozenset,
                  tentative: bool = False) -> frozenset:
    def fail(message: str) -> frozenset:
        raise SafetyError(message)

    if isinstance(formula, PathAtom):
        root_vars = term_variables(formula.root)
        unbound_root = [v for v in root_vars if v not in bound]
        if unbound_root:
            return fail(
                f"path predicate {formula}: root variables "
                f"{unbound_root} are not yet bound")
        return bound | frozenset(formula.path.variables())
    if isinstance(formula, Eq):
        left_vars = [v for v in term_variables(formula.left)
                     if v not in bound]
        right_vars = [v for v in term_variables(formula.right)
                      if v not in bound]
        if not left_vars and not right_vars:
            return bound
        if (not left_vars and isinstance(formula.right, _VARS)
                and right_vars == [formula.right]):
            return bound | {formula.right}
        if (not right_vars and isinstance(formula.left, _VARS)
                and left_vars == [formula.left]):
            return bound | {formula.left}
        return fail(f"equality {formula} restricts no variable")
    if isinstance(formula, In):
        collection_vars = [v for v in term_variables(formula.collection)
                           if v not in bound]
        if collection_vars:
            return fail(
                f"membership {formula}: collection variables "
                f"{collection_vars} are not yet bound")
        element_vars = [v for v in term_variables(formula.element)
                        if v not in bound]
        if not element_vars:
            return bound
        if (isinstance(formula.element, _VARS)
                and element_vars == [formula.element]):
            return bound | {formula.element}
        return fail(f"membership {formula}: element pattern unsupported")
    if isinstance(formula, (Subset, Pred)):
        if isinstance(formula, Subset):
            variables = (term_variables(formula.left)
                         + term_variables(formula.right))
        else:
            variables = [v for a in formula.arguments
                         for v in term_variables(a)]
        unbound = [v for v in variables if v not in bound]
        if unbound:
            return fail(
                f"atom {formula}: variables {unbound} are not "
                "range-restricted (interpreted atoms bind nothing)")
        return bound
    return fail(f"unknown atom {formula!r}")
