"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the
subsystems of the paper reproduction:

* SGML parsing / validation errors (:class:`SgmlError` and children),
* data-model and typing errors (:class:`ModelError` and children),
* query-language errors (:class:`QueryError` and children).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# SGML subsystem
# ---------------------------------------------------------------------------


class SgmlError(ReproError):
    """Base class for SGML lexing, parsing and validation problems."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}" + (
                f", column {column})" if column is not None else ")")
        super().__init__(message)


class DtdSyntaxError(SgmlError):
    """The DTD text could not be parsed."""


class ContentModelError(SgmlError):
    """A content model expression is malformed or ambiguous."""


class DocumentSyntaxError(SgmlError):
    """The document instance text could not be parsed."""


class ValidationError(SgmlError):
    """A document instance does not conform to its DTD."""


class EntityError(SgmlError):
    """An entity reference could not be resolved."""


# ---------------------------------------------------------------------------
# Data model subsystem
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for data-model problems (types, values, schemas)."""


class TypeConstructionError(ModelError):
    """A type expression is malformed (e.g. duplicate tuple attributes)."""


class SubtypingError(ModelError):
    """Two types have no common supertype where one is required."""


class ValueError_(ModelError):
    """A value is malformed or does not belong to the expected domain.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`ValueError`; exported as ``ModelValueError`` from the package
    root.
    """


class SchemaError(ModelError):
    """A schema is ill-formed (bad hierarchy, unknown class, bad root)."""


class InstanceError(ModelError):
    """An instance violates its schema (bad oid, wrongly typed value)."""


class ConstraintViolation(ModelError):
    """A Figure-3-style constraint does not hold on a value."""

    def __init__(self, message: str, class_name: str | None = None) -> None:
        self.class_name = class_name
        if class_name is not None:
            message = f"[{class_name}] {message}"
        super().__init__(message)


class StoreError(ModelError):
    """The object store failed (unknown oid, corrupt snapshot...)."""


class MappingError(ModelError):
    """The DTD -> schema or document -> instance mapping failed."""


# ---------------------------------------------------------------------------
# Query subsystem
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-language problems."""


class QuerySyntaxError(QueryError):
    """The O2SQL text could not be parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}" + (
                f", column {column})" if column is not None else ")")
        super().__init__(message)


class QueryTypeError(QueryError):
    """Static type checking of a query failed.

    Raised, for instance, when no alternative of a union type carries a
    requested attribute (Section 5.3: "if no alternative of the type union
    has an attribute review, this leads to a type error").
    """


class SafetyError(QueryError):
    """A calculus formula is not range-restricted (Section 5.2)."""


class EvaluationError(QueryError):
    """Runtime failure during query evaluation."""


class WrongBranchAccess(QueryError):
    """A *named instance* (persistent root) was accessed through the
    wrong union branch.

    Implicit selectors apply only to variables (Section 4.2): for a
    named instance such as ``my_section``, ``my_section.subsectns`` on an
    ``a1``-marked section "will return a type error detected at execution
    time".  Deliberately *not* an :class:`EvaluationError` so the
    wrong-branch-is-false convention for variables does not swallow it.
    """


class PatternError(QueryError):
    """A ``contains`` pattern expression is malformed."""


class CompilationError(QueryError):
    """Calculus -> algebra compilation failed (Section 5.4)."""


class SQLBackendError(QueryError):
    """Base class for relational-backend problems (:mod:`repro.sqlbackend`)."""


class SQLUnsupportedError(SQLBackendError, CompilationError):
    """The plan (or the shredded store) falls outside the relational
    subset the SQL emitter covers.

    Deliberately *also* a :class:`CompilationError`: diffcheck coarsens
    static rejection to the shared ``rejected`` bucket, so an
    unsupported construct is an expected abstention, never a spurious
    divergence.  The engine reacts by falling back to ordinary plan
    execution (``sql.fallbacks``).
    """


class SQLExecutionError(SQLBackendError):
    """The emitted statement failed inside the database engine."""


# ---------------------------------------------------------------------------
# Serving subsystem (repro.serve)
# ---------------------------------------------------------------------------


class ServeError(ReproError):
    """Base class for query-server problems (:mod:`repro.serve`)."""


class UnknownTenantError(ServeError):
    """A request named a tenant the server does not shard."""


class AdmissionError(ServeError):
    """The server refused a request at admission time (bounded queue
    full, or the server is shut down).  Deliberately raised *before*
    any work is queued — a rejected request costs nothing downstream."""


class RequestTimeout(ServeError):
    """A request's wall-clock budget expired before its result arrived.

    The timeout abandons the *wait*, never the shared execution: a
    collapsed flight keeps running for its remaining waiters."""


class RequestCancelled(ServeError):
    """The request was cancelled by its submitter.

    Cancellation is cooperative: an execution already in flight stops
    at its next checkpoint, and only when *every* collapsed waiter has
    cancelled."""


class PlanVerificationError(QueryError):
    """A compiled plan failed static verification (repro.plancheck).

    Deliberately *not* a :class:`CompilationError`: diffcheck coarsens
    static rejection (safety/compilation) to one ``rejected`` label on
    both sides, whereas a verification failure means the optimizer
    produced an ill-formed plan — that is a bug to surface, never an
    expected rejection.

    ``faults`` carries the structured
    :class:`~repro.plancheck.diagnostics.PlanFault` list.
    """

    def __init__(self, message: str, faults: list | None = None) -> None:
        self.faults = list(faults or [])
        super().__init__(message)
