"""Pre/post-order structural index — the "XPath accelerator" layer.

See :mod:`repro.structindex.index` for the encoding and its
completeness/freshness invariants.
"""

from repro.structindex.index import (
    DEFAULT_MAX_BLOCK_NODES,
    Block,
    StructuralIndex,
)

__all__ = ["Block", "DEFAULT_MAX_BLOCK_NODES", "StructuralIndex"]
