"""The pre/post-order structural index (the "XPath accelerator" layer).

Every value node reachable from a persistence root is assigned a
``(pre, post, level, parent)`` tuple, kept in arrays sorted by ``pre``
— one *block* per root.  Because the arrays are folded from the exact
event stream of :func:`repro.paths.enumeration.walk_events` (the
traversal ``paths_from`` projects), two classic properties hold by
construction:

* **interval containment is ancestry** —
  ``pre(a) < pre(d) ∧ post(d) < post(a)  ⇔  a is an ancestor of d``;
* **descendants are contiguous** — the subtree of the node at pre rank
  ``i`` occupies exactly the pre range ``[i, end[i])``, so the valuation
  of an unbound path variable rooted there (the whole union-of-plans
  fan-out of Section 5.4) is *one range scan* over precomputed
  ``(path, value)`` arrays.

Secondary slices index oid nodes per allocation class and atomic leaf
values per equality bucket; both are pre-sorted, so "which occurrences
of value ``v`` fall inside this subtree" (the equality joins the
compiler emits for bound variables after a path variable) is two
bisections — the ancestor/descendant interval join.

**Completeness.**  Under the restricted semantics a walk never crosses
two objects of the same class, so a subtree recorded below such a
crossing can be *truncated* relative to a fresh walk started inside it
(the fresh walk's marker set starts empty).  Each node therefore
carries a ``complete`` flag: when a dereference is blocked by a class
crossed at ancestor ``s``, every open node strictly below ``s`` is
incomplete.  Scans only ever start from *complete* occurrences;
everything else falls back to the live walk — never wrong, only
slower.

**Freshness.**  The index piggybacks on the plan-cache epoch
(:class:`repro.cache.PlanCache`): the owning
:class:`~repro.session.DocumentStore` notifies it on every mutation it
performs (loads mark everything dirty, in-database text edits mark only
the blocks containing the edited object), and :meth:`refresh` rebuilds
exactly the dirty blocks.  An epoch bump the index was *not* told about
(someone mutated the instance behind the facade's back) degrades to a
full rebuild — stale answers are structurally impossible.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import EvaluationError
from repro.oodb.values import ATOM_PYTYPES, Nil, Oid
from repro.paths.enumeration import (
    BLOCKED,
    ENTER,
    RESTRICTED,
    walk_events,
)
from repro.paths.steps import AttrStep, DerefStep, Path

#: Per-block node budget: a pathological value graph aborts the block
#: (queries fall back to live walks) instead of stalling the build.
DEFAULT_MAX_BLOCK_NODES = 1_000_000


class Block:
    """The encoding of one persistence root, in pre-order arrays."""

    __slots__ = ("root_name", "origin", "post", "level", "parent",
                 "values", "paths", "end", "complete", "classes",
                 "atoms", "oids", "truncated", "value_ids",
                 "attr_steps", "attr_positions", "blocked_oids")

    def __init__(self, root_name: str, origin: object,
                 truncated: bool = False) -> None:
        self.root_name = root_name
        self.origin = origin
        self.values: list = []        # pre -> node value
        self.paths: list[Path] = []   # pre -> absolute path from the root
        self.post: list[int] = []     # pre -> post-order rank
        self.level: list[int] = []    # pre -> depth (root = 0)
        self.parent: list[int] = []   # pre -> parent's pre (-1 at root)
        self.end: list[int] = []      # pre -> subtree end (exclusive)
        self.complete: list[bool] = []
        self.classes: dict[str, list[int]] = {}   # class -> oid pres
        self.atoms: dict = {}                     # atom value -> pres
        self.oids: dict[Oid, list[int]] = {}      # oid -> pres
        self.truncated = truncated
        self.value_ids: list[int] = []  # ids registered in the identity map
        # attribute name -> pres reached by an AttrStep of that name,
        # plus the combined list (for attribute variables) and the oids
        # whose dereference the semantics suppressed (no subtree)
        self.attr_steps: dict[str, list[int]] = {}
        self.attr_positions: list[int] = []
        self.blocked_oids: list[int] = []

    @property
    def size(self) -> int:
        return len(self.values)

    def is_ancestor(self, a: int, d: int) -> bool:
        """The interval-containment test (ancestor, strictly)."""
        return a < d and self.post[d] < self.post[a]

    def subtree_size(self, pre: int) -> int:
        return self.end[pre] - pre

    def relative_pairs(self, pre: int, max_paths: int | None = None):
        """``(relative path, value)`` for the subtree at ``pre`` — the
        materialized ``paths_from(values[pre], ...)`` (same pairs, same
        order, same ``max_paths`` error contract)."""
        paths = self.paths
        values = self.values
        depth = len(paths[pre].steps)
        stop = self.end[pre]
        if max_paths is not None and stop - pre > max_paths:
            # mirror the live walk's guard lazily: yield up to the
            # limit, then raise — a consumer that stops early (an
            # existential finding its witness) never sees the error
            limit = pre + max_paths
            for position in range(pre, stop):
                if position >= limit:
                    raise EvaluationError(
                        f"path enumeration exceeded {max_paths} paths")
                yield (Path._unsafe(paths[position].steps[depth:]),
                       values[position])
            return
        for position in range(pre, stop):
            yield (Path._unsafe(paths[position].steps[depth:]),
                   values[position])

    def attr_candidates(self, pre: int, name: str | None = None
                        ) -> list[int]:
        """Pre ranks inside the subtree at ``pre`` whose value *can*
        select attribute ``name`` (any attribute when ``None``) — the
        candidate set of a fused scan-then-select.

        A holder of the attribute is the AttrStep position's parent;
        selection also silently crosses the object boundary
        (auto-dereference) and looks through one-field marked-union
        tuples, so the holder's DEREF-chain ancestors and — behind one
        more AttrStep hop — the marked wrapper and *its* DEREF chain
        select the same value.  Oids whose dereference the restricted
        walk suppressed have no subtree here, yet a live selection
        still dereferences them: they (and their DEREF chains) are kept
        as candidates and re-checked against the instance.  The set
        over-approximates; the caller applies the exact selection per
        candidate.
        """
        seen: set[int] = set()
        out: list[int] = []
        stop = self.end[pre]
        sources = (self.attr_positions if name is None
                   else self.attr_steps.get(name, ()))
        lo = bisect_left(sources, pre + 1)
        hi = bisect_left(sources, stop, lo)
        for j in sources[lo:hi]:
            holder = self.parent[j]
            self._climb_derefs(holder, pre, seen, out)
            if (holder > pre
                    and isinstance(self.paths[holder].steps[-1],
                                   AttrStep)):
                # the holder may be the payload of a marked union
                self._climb_derefs(self.parent[holder], pre, seen, out)
        blocked = self.blocked_oids
        lo = bisect_left(blocked, pre)
        hi = bisect_left(blocked, stop, lo)
        for j in blocked[lo:hi]:
            self._climb_derefs(j, pre, seen, out)
        out.sort()
        return out

    def _climb_derefs(self, i: int, pre: int, seen: set,
                      out: list) -> None:
        while i not in seen:
            seen.add(i)
            out.append(i)
            if i <= pre or not isinstance(self.paths[i].steps[-1],
                                          DerefStep):
                return
            i = self.parent[i]

    def matches_in(self, pre: int, probe: object):
        """Occurrences of ``probe`` inside the subtree at ``pre`` as
        ``(relative path, value)`` pairs, via the secondary slices —
        or ``None`` when the probe's type has no slice (collections:
        their ``≡`` has structural cases a hash bucket cannot model)."""
        if isinstance(probe, Oid):
            positions = self.oids.get(probe, ())
        elif isinstance(probe, (Nil,) + ATOM_PYTYPES):
            # dict-key equality on atoms is Python ``==`` — exactly the
            # ``≡`` relation restricted to atomic values (1 ≡ 1.0 ≡ True
            # share a bucket)
            positions = self.atoms.get(probe, ())
        else:
            return None
        stop = self.end[pre]
        lo = bisect_left(positions, pre)
        hi = bisect_left(positions, stop, lo)
        depth = len(self.paths[pre].steps)
        return [(Path._unsafe(self.paths[j].steps[depth:]),
                 self.values[j])
                for j in positions[lo:hi]]


def _build_block(root_name: str, origin: object, instance,
                 max_nodes: int | None) -> Block:
    """Fold one :func:`walk_events` stream into a :class:`Block`."""
    block = Block(root_name, origin)
    values = block.values
    paths = block.paths
    posts = block.post
    levels = block.level
    parents = block.parent
    ends = block.end
    complete = block.complete
    open_nodes: list[int] = []       # pres of the current root-to-node path
    crossings: dict[str, int] = {}   # class -> pre of the crossing oid
    restore: dict[int, tuple] = {}   # deref-child pre -> crossing to undo
    post_counter = 0
    try:
        for kind, path, value, level in walk_events(
                origin, instance, RESTRICTED, max_nodes):
            if kind is ENTER:
                pre = len(values)
                parent = open_nodes[-1] if open_nodes else -1
                if parent >= 0 and isinstance(values[parent], Oid):
                    # entering the deref target: the parent oid just
                    # crossed its class for this subtree
                    crossed = values[parent].class_name
                    restore[pre] = (crossed, crossings.get(crossed))
                    crossings[crossed] = parent
                values.append(value)
                paths.append(path)
                levels.append(level)
                parents.append(parent)
                posts.append(-1)
                ends.append(-1)
                complete.append(True)
                open_nodes.append(pre)
                if isinstance(value, Oid):
                    block.oids.setdefault(value, []).append(pre)
                    block.classes.setdefault(
                        value.class_name, []).append(pre)
                elif isinstance(value, (Nil,) + ATOM_PYTYPES):
                    block.atoms.setdefault(value, []).append(pre)
                if path.steps and isinstance(path.steps[-1], AttrStep):
                    block.attr_steps.setdefault(
                        path.steps[-1].name, []).append(pre)
                    block.attr_positions.append(pre)
            elif kind is BLOCKED:
                # ``value``'s class was crossed at an open ancestor: a
                # fresh walk from any open node strictly below that
                # crossing would deref here, so those subtrees are
                # truncated relative to paths_from
                crossing = crossings.get(value.class_name, -1)
                for open_pre in reversed(open_nodes):
                    if open_pre == crossing:
                        break
                    complete[open_pre] = False
            else:  # LEAVE
                pre = open_nodes.pop()
                posts[pre] = post_counter
                post_counter += 1
                ends[pre] = len(values)
                undo = restore.pop(pre, None)
                if undo is not None:
                    crossed, previous = undo
                    if previous is None:
                        del crossings[crossed]
                    else:
                        crossings[crossed] = previous
    except EvaluationError:
        # node budget exceeded: an unusable (but well-formed) block
        return Block(root_name, origin, truncated=True)
    # an oid with an empty subtree is one whose dereference the
    # semantics suppressed (a non-blocked oid always has its DEREF
    # child): the fused attribute scans must re-check these live
    block.blocked_oids = sorted(
        pre for positions in block.oids.values() for pre in positions
        if ends[pre] == pre + 1)
    return block


class StructuralIndex:
    """Pre/post interval encodings of every persistence root.

    ``epoch_source`` is any object with an ``epoch`` attribute — in
    practice the store's :class:`~repro.cache.PlanCache`, so the same
    bump that invalidates cached plans marks this index stale.
    ``metrics`` follows the repository-wide convention (``None`` =
    disabled; counters land under ``structindex.*``).
    """

    def __init__(self, instance, epoch_source=None,
                 max_block_nodes: int | None = DEFAULT_MAX_BLOCK_NODES
                 ) -> None:
        self.instance = instance
        self.epoch_source = epoch_source
        self.max_block_nodes = max_block_nodes
        self.metrics = None
        self._lock = threading.RLock()
        self._blocks: dict[str, Block] = {}
        # every occurrence (complete or not), for dirty marking
        self._oid_nodes: dict[Oid, list[tuple[str, int]]] = {}
        # id(value) -> one *complete* occurrence; the blocks' value
        # arrays keep the objects alive, so ids stay unambiguous
        self._value_nodes: dict[int, tuple[str, int]] = {}
        self._dirty: set[str] = set()
        self._all_dirty = True
        self._synced_epoch = None

    # -- maintenance hooks ----------------------------------------------------

    def note_data_change(self, epoch=None) -> None:
        """A structural mutation (document load, new root): everything
        is stale; ``epoch`` records the post-mutation epoch so
        :meth:`refresh` knows the change was accounted for."""
        with self._lock:
            self._all_dirty = True
            self._synced_epoch = epoch

    def note_object_update(self, oid: Oid, epoch=None) -> None:
        """An in-database edit of one object: only the blocks whose
        interval arrays contain the oid are stale (the TextIndex-style
        targeted maintenance).  An oid the index has never seen forces
        a full rebuild — it cannot tell what the update touched."""
        with self._lock:
            touched = {name for name, _ in self._oid_nodes.get(oid, ())}
            if touched:
                self._dirty.update(touched)
            else:
                self._all_dirty = True
            self._synced_epoch = epoch

    def refresh(self) -> int:
        """Bring the index up to date; returns the number of blocks
        rebuilt.  Cheap when clean (no lock taken)."""
        if (not self._all_dirty and not self._dirty
                and (self.epoch_source is None
                     or self.epoch_source.epoch == self._synced_epoch)):
            return 0
        with self._lock:
            if self.epoch_source is not None:
                epoch = self.epoch_source.epoch
                if epoch != self._synced_epoch:
                    # an unannounced mutation: trust nothing
                    self._all_dirty = True
                    self._synced_epoch = epoch
            if self._all_dirty:
                pending = list(self.instance.root_names)
                for stale in list(self._blocks):
                    if stale not in pending:
                        self._drop_block(stale)
                self._all_dirty = False
                self._dirty.clear()
            elif self._dirty:
                pending = sorted(self._dirty)
                self._dirty.clear()
            else:
                return 0
            rebuilt = 0
            for name in pending:
                if self.instance.has_root(name):
                    self._rebuild_block(name)
                    rebuilt += 1
                else:
                    self._drop_block(name)
            return rebuilt

    def _rebuild_block(self, name: str) -> None:
        self._drop_block(name)
        origin = self.instance.root(name)
        block = _build_block(name, origin, self.instance,
                             self.max_block_nodes)
        self._blocks[name] = block
        for oid, positions in block.oids.items():
            entries = self._oid_nodes.setdefault(oid, [])
            entries.extend((name, pre) for pre in positions)
        for pre, value in enumerate(block.values):
            if block.complete[pre]:
                key = id(value)
                if key not in self._value_nodes:
                    self._value_nodes[key] = (name, pre)
                    block.value_ids.append(key)
        if self.metrics is not None:
            self.metrics.inc("structindex.block_rebuilds")
            self.metrics.inc("structindex.nodes_indexed", block.size)

    def _drop_block(self, name: str) -> None:
        old = self._blocks.pop(name, None)
        if old is None:
            return
        for oid in old.oids:
            entries = self._oid_nodes.get(oid)
            if entries is not None:
                # copy-on-write: swap a fresh list in so a reader that
                # grabbed the old one keeps a consistent snapshot
                kept = [entry for entry in entries if entry[0] != name]
                if kept:
                    self._oid_nodes[oid] = kept
                else:
                    del self._oid_nodes[oid]
        for key in old.value_ids:
            entry = self._value_nodes.get(key)
            if entry is not None and entry[0] == name:
                del self._value_nodes[key]

    # -- lookups --------------------------------------------------------------

    def locate(self, source: object) -> tuple[Block, int] | None:
        """A *complete* occurrence of ``source`` as ``(block, pre)``,
        or ``None`` (unindexed value, or every occurrence truncated).
        Oids match by value (equal oids are the same allocation); any
        other node matches by object identity.

        The lookup itself runs under the index lock (a rebuild may be
        swapping blocks concurrently), but the returned :class:`Block`
        is immutable once published: the caller scans it lock-free, and
        a rebuild racing the scan installs a *new* block object — the
        held one keeps serving a consistent snapshot of the epoch it
        was built at (the serving layer's write fence decides whether
        that snapshot is current enough to return)."""
        self.refresh()
        with self._lock:
            if isinstance(source, Oid):
                for name, pre in self._oid_nodes.get(source, ()):
                    block = self._blocks.get(name)
                    if block is not None and block.complete[pre]:
                        return block, pre
                return None
            entry = self._value_nodes.get(id(source))
            if entry is None:
                return None
            name, pre = entry
            block = self._blocks.get(name)
            if block is None or block.values[pre] is not source:
                return None
            return block, pre

    @property
    def blocks(self) -> dict[str, Block]:
        """Root name → block (read-only view for tests/diagnostics)."""
        with self._lock:
            return dict(self._blocks)

    def stats(self) -> dict:
        with self._lock:
            return {
                "blocks": len(self._blocks),
                "nodes": sum(b.size for b in self._blocks.values()),
                "oids": len(self._oid_nodes),
                "synced_epoch": self._synced_epoch,
                "dirty": bool(self._all_dirty or self._dirty),
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"StructuralIndex(blocks={len(self._blocks)}, "
                f"epoch={self._synced_epoch})")
