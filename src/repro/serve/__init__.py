"""Concurrent multi-tenant serving over document stores.

See :mod:`repro.serve.server` for the serving disciplines (snapshot-
epoch reads, request collapsing, admission control) and
:mod:`repro.serve.loadgen` for the traffic generator the benchmark and
the CI smoke job drive.
"""

from repro.serve.loadgen import LoadGenerator, LoadReport, percentile
from repro.serve.server import QueryServer, Request, ServeResult

__all__ = [
    "QueryServer",
    "Request",
    "ServeResult",
    "LoadGenerator",
    "LoadReport",
    "percentile",
]
