"""A deterministic load generator for :class:`~repro.serve.QueryServer`.

The generator drives mixed read/update traffic through the server the
way the paper's workload section sizes it: a pool of client threads
each issuing queries drawn from a fixed set, a configurable
*hot fraction* of duplicated queries (what makes request collapsing
pay), and optionally a writer thread applying in-database edits while
the readers run.  Latency is recorded per response; the report carries
qps and the p50/p90/p99 percentiles the benchmark emits to
``BENCH_SERVE.json``.

Everything is seeded — two runs with the same knobs produce the same
request sequence — so benchmark deltas mean the *server* changed, not
the traffic.
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import ServeError


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


class LoadReport:
    """The outcome of one generator run."""

    __slots__ = ("submitted", "completed", "errors", "rejected",
                 "collapsed", "elapsed", "latencies")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.collapsed = 0
        self.elapsed = 0.0
        self.latencies: list[float] = []

    @property
    def qps(self) -> float:
        return (self.completed / self.elapsed) if self.elapsed else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile in milliseconds."""
        return percentile(self.latencies, fraction) * 1000.0

    def summary(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "collapsed": self.collapsed,
            "elapsed_seconds": self.elapsed,
            "qps": self.qps,
            "p50_ms": self.latency_percentile(0.50),
            "p90_ms": self.latency_percentile(0.90),
            "p99_ms": self.latency_percentile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"LoadReport(completed={self.completed}, "
                f"qps={self.qps:.1f}, "
                f"p99={self.latency_percentile(0.99):.2f}ms)")


class LoadGenerator:
    """Drive seeded mixed traffic at a server.

    ``queries`` is the read pool; ``hot_fraction`` of requests repeat
    the single *hot* query (the first of the pool) to create the
    duplicate bursts collapsing exists for; the rest draw uniformly.
    ``clients`` threads each issue ``requests_per_client`` reads.
    ``writer`` (optional) is a zero-argument callable applying one
    mutation; it runs in its own thread every ``write_interval``
    seconds until the readers drain.
    """

    def __init__(self, server, tenant: str, queries: list[str],
                 clients: int = 4, requests_per_client: int = 50,
                 hot_fraction: float = 0.0, seed: int = 0,
                 writer=None, write_interval: float = 0.005,
                 timeout: float = 30.0) -> None:
        if not queries:
            raise ValueError("need at least one query")
        self.server = server
        self.tenant = tenant
        self.queries = list(queries)
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.hot_fraction = hot_fraction
        self.seed = seed
        self.writer = writer
        self.write_interval = write_interval
        self.timeout = timeout

    def _plan_client(self, index: int) -> list[str]:
        rng = random.Random(self.seed * 100_003 + index)
        plan = []
        for _ in range(self.requests_per_client):
            if rng.random() < self.hot_fraction:
                plan.append(self.queries[0])
            else:
                plan.append(rng.choice(self.queries))
        return plan

    def run(self) -> LoadReport:
        report = LoadReport()
        lock = threading.Lock()
        stop_writer = threading.Event()

        def client(index: int) -> None:
            for text in self._plan_client(index):
                with lock:
                    report.submitted += 1
                started = time.perf_counter()
                try:
                    result = self.server.query(
                        self.tenant, text, timeout=self.timeout)
                except ServeError:
                    with lock:
                        report.rejected += 1
                    continue
                except Exception:
                    with lock:
                        report.errors += 1
                    continue
                latency = time.perf_counter() - started
                with lock:
                    report.completed += 1
                    report.latencies.append(latency)
                    if result.collapsed:
                        report.collapsed += 1

        def writer_loop() -> None:
            while not stop_writer.wait(self.write_interval):
                self.writer()

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(self.clients)
        ]
        writer_thread = None
        if self.writer is not None:
            writer_thread = threading.Thread(
                target=writer_loop, daemon=True)
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if writer_thread is not None:
            writer_thread.start()
        for thread in threads:
            thread.join()
        report.elapsed = time.perf_counter() - started
        if writer_thread is not None:
            stop_writer.set()
            writer_thread.join()
        return report
