"""The concurrent multi-tenant query server.

:class:`QueryServer` turns the per-query engine into a traffic-serving
layer: N :class:`~repro.session.DocumentStore`\\ s sharded by tenant id,
a bounded thread pool executing reads, writers serialized per shard,
and three serving disciplines on top:

**Snapshot-epoch reads.**  Every read pins the store epoch it started
on and validates against the store's seqlock write fence
(:attr:`~repro.session.DocumentStore.write_seq`): sample the fence,
execute, sample again — equal even samples prove no writer overlapped,
so the result is consistent exactly at the pinned epoch.  A read that
raced a writer is discarded and retried (``serve.epoch_conflicts``);
after :attr:`QueryServer.read_retries` conflicts the reader takes the
shard's writer lock once (:meth:`DocumentStore.excluding_writers`) and
executes consistently — the only point where a reader may briefly
delay a writer.  Writers never wait for readers, and a response is
always *stale-but-consistent*: the whole result reflects one epoch,
never a torn mix of two.

**Request collapsing.**  Identical concurrent queries — same tenant,
same plan-cache key (:meth:`DocumentStore.cache_key`), same admission
epoch — coalesce into one in-flight execution whose result is fanned
out to every waiter (``serve.collapsed``).  The invariant the property
suite pins down: ``serve.collapsed + serve.flights ==
serve.submitted``.

**Admission control.**  At most ``max_pending`` executions may be
outstanding; beyond that :meth:`QueryServer.submit` raises
:class:`~repro.errors.AdmissionError` before queueing any work
(collapsed waiters ride an existing execution and are always
admitted).  Each wait carries a timeout; expiry abandons the wait —
never the shared execution — and cancellation is cooperative: a flight
stops at its next checkpoint once every attached waiter has cancelled.

The asyncio face (:meth:`QueryServer.aquery`) wraps the same
thread-pool futures, so one server can serve blocking callers and an
event loop at once.

Counters land in the server's own registry (``serve.*``):
``submitted``, ``flights``, ``collapsed``, ``executed``, ``errors``,
``aborted``, ``rejected``, ``timeouts``, ``cancelled``,
``epoch_conflicts``, ``escalations``, ``writes``, plus
``queue_depth`` and per-tenant ``latency_ms.<tenant>`` histograms.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import CancelledError as _FutureCancelled
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.errors import (
    AdmissionError,
    RequestCancelled,
    RequestTimeout,
    UnknownTenantError,
)
from repro.observe import MetricsRegistry

#: Deterministic fault-injection hook (the plancheck ``_TEST_MUTATION``
#: idiom): when set to a callable it is invoked as ``hook(stage,
#: flight)`` at named points of the execution path — ``"executing"``
#: (worker picked the flight up, nothing pinned yet) and ``"pinned"``
#: (epoch pinned, about to execute) — so tests can stall a request
#: mid-query and force the timeout, cancellation and
#: epoch-bump-during-read paths on demand.  Never set in production.
_TEST_DELAY = None


def _delay(stage: str, flight: "_Flight") -> None:
    hook = _TEST_DELAY
    if hook is not None:
        hook(stage, flight)


_UNSET = object()


class ServeResult:
    """One response: the result set plus its snapshot provenance."""

    __slots__ = ("value", "tenant", "epoch", "collapsed", "conflicts",
                 "latency")

    def __init__(self, value, tenant: str, epoch: int, collapsed: bool,
                 conflicts: int, latency: float) -> None:
        #: The query's :class:`~repro.oodb.values.SetValue`.
        self.value = value
        self.tenant = tenant
        #: The store epoch this result is consistent at (pinned inside
        #: the validated fence window — never a torn mix of epochs).
        self.epoch = epoch
        #: Did this request ride another request's execution?
        self.collapsed = collapsed
        #: Seqlock conflicts the execution retried through.
        self.conflicts = conflicts
        #: Submit → completion wall-clock seconds for *this* waiter.
        self.latency = latency

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ServeResult(tenant={self.tenant!r}, "
                f"epoch={self.epoch}, rows={len(self.value)}, "
                f"collapsed={self.collapsed})")


class Request:
    """A submitted query: a handle over one future response."""

    __slots__ = ("tenant", "text", "submitted_at", "future", "_server",
                 "_flight", "_cancelled")

    def __init__(self, server: "QueryServer", tenant: str,
                 text: str) -> None:
        self.tenant = tenant
        self.text = text
        self.submitted_at = time.perf_counter()
        self.future: Future = Future()
        self._server = server
        self._flight: _Flight | None = None
        self._cancelled = False

    @property
    def collapsed(self) -> bool:
        """Did submission attach to an already in-flight execution?"""
        flight = self._flight
        return flight is not None and flight.leader is not self

    def result(self, timeout=_UNSET) -> ServeResult:
        """Block for the response (default budget: the server's
        ``default_timeout``).  Expiry abandons only this wait — a
        collapsed flight keeps running for its other waiters — and
        raises :class:`~repro.errors.RequestTimeout`."""
        budget = (self._server.default_timeout if timeout is _UNSET
                  else timeout)
        try:
            return self.future.result(budget)
        except _FutureTimeout:
            self._server.metrics.inc("serve.timeouts")
            raise RequestTimeout(
                f"no result within {budget}s for {self.text!r}"
            ) from None
        except _FutureCancelled:  # pragma: no cover - defensive
            raise RequestCancelled(
                f"request cancelled: {self.text!r}") from None

    def cancel(self) -> bool:
        """Cooperatively cancel this request.  Returns ``False`` when
        the response already landed.  The shared execution stops at its
        next checkpoint only once *every* waiter has cancelled."""
        if self.future.done():
            return False
        self._cancelled = True
        flight = self._flight
        if flight is not None:
            flight.note_cancel()
        try:
            self.future.set_exception(
                RequestCancelled(f"request cancelled: {self.text!r}"))
        except Exception:
            return False  # the response raced us in
        self._server.metrics.inc("serve.cancelled")
        return True

    def __repr__(self) -> str:  # pragma: no cover
        summary = " ".join(self.text.split())
        if len(summary) > 40:
            summary = summary[:37] + "..."
        return f"Request({self.tenant!r}, {summary!r})"


class _Flight:
    """One execution shared by every collapsed waiter of a key."""

    __slots__ = ("key", "tenant", "store", "text", "requests", "done",
                 "leader", "_cancel_votes", "cancelled")

    def __init__(self, key: tuple, tenant: str, store, text: str,
                 leader: Request) -> None:
        self.key = key
        self.tenant = tenant
        self.store = store
        self.text = text
        self.requests: list[Request] = [leader]
        self.leader = leader
        self.done = False
        self._cancel_votes = 0
        self.cancelled = False

    def attach(self, request: Request) -> None:
        request._flight = self
        self.requests.append(request)
        self.cancelled = False  # a live waiter keeps the flight alive

    def note_cancel(self) -> None:
        self._cancel_votes += 1
        if self._cancel_votes >= len(self.requests):
            self.cancelled = True

    def check_cancelled(self) -> None:
        if self.cancelled:
            raise RequestCancelled(
                f"every waiter cancelled: {self.text!r}")


class _Shard:
    """One tenant: a store plus its serving bookkeeping."""

    __slots__ = ("tenant", "store")

    def __init__(self, tenant: str, store) -> None:
        self.tenant = tenant
        self.store = store


class QueryServer:
    """Serve O₂SQL traffic over tenant-sharded document stores.

    ``workers`` sizes the read thread pool; ``max_pending`` bounds the
    number of outstanding (queued + running) executions — admission
    control; ``collapse`` toggles in-flight request collapsing;
    ``default_timeout`` is the per-request wait budget ``None`` waits
    forever); ``read_retries`` caps the seqlock retry loop before the
    consistency fallback takes the writer lock once, and
    ``escalate_after`` (seconds) is the long-read threshold: a query
    shape whose observed runtime reaches it skips the optimistic loop
    entirely on later executions (and a conflicted attempt that ran
    that long stops retrying at once) — a read that slow keeps losing
    the optimistic race against a steady writer, burning a recompile
    per doomed retry, so it takes the consistent fallback instead.
    """

    def __init__(self, workers: int = 4, max_pending: int | None = None,
                 collapse: bool = True,
                 default_timeout: float | None = None,
                 read_retries: int = 6,
                 escalate_after: float = 0.05,
                 metrics: MetricsRegistry | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.max_pending = (workers * 32 if max_pending is None
                            else max_pending)
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.collapse = collapse
        self.default_timeout = default_timeout
        self.read_retries = read_retries
        self.escalate_after = escalate_after
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry())
        self._lock = threading.Lock()
        self._tenants: dict[str, _Shard] = {}
        self._inflight: dict[tuple, _Flight] = {}
        # (tenant, cache_key) -> last observed runtime, feeding the
        # proactive long-read escalation (bounded by the number of
        # distinct query shapes the server ever sees)
        self._runtimes: dict[tuple, float] = {}
        self._pending = 0
        self._closed = False
        self._started_at = time.perf_counter()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")

    # -- tenancy --------------------------------------------------------------

    def add_tenant(self, tenant: str, store) -> None:
        """Shard ``store`` under ``tenant``.  One store, one tenant."""
        with self._lock:
            if tenant in self._tenants:
                raise ValueError(f"tenant {tenant!r} already exists")
            self._tenants[tenant] = _Shard(tenant, store)

    def create_tenant(self, tenant: str, dtd_text: str, **store_kwargs):
        """Build a fresh :class:`~repro.session.DocumentStore` from
        ``dtd_text`` and shard it; returns the store."""
        from repro.session import DocumentStore
        store = DocumentStore(dtd_text, **store_kwargs)
        self.add_tenant(tenant, store)
        return store

    def tenant(self, tenant: str):
        """The tenant's store (for inspection and direct loading
        during setup — serve-time writes should go through the
        server's write methods)."""
        return self._shard(tenant).store

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._tenants)

    def _shard(self, tenant: str) -> _Shard:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise UnknownTenantError(
                f"unknown tenant: {tenant!r}") from None

    # -- reads ----------------------------------------------------------------

    def submit(self, tenant: str, text: str) -> Request:
        """Admit one read; returns immediately with a :class:`Request`.

        Collapsible duplicates (same tenant, plan-cache key and
        admission epoch) attach to the in-flight execution and consume
        no admission slot; everything else takes a slot or is refused
        with :class:`~repro.errors.AdmissionError`.
        """
        request = Request(self, tenant, text)
        with self._lock:
            if self._closed:
                raise AdmissionError("server is closed")
            shard = self._shard(tenant)
            pin = shard.store.pin_epoch()
            key = (tenant, shard.store.cache_key(text), pin.epoch)
            flight = self._inflight.get(key) if self.collapse else None
            if flight is not None and not flight.done:
                flight.attach(request)
                self.metrics.inc("serve.submitted")
                self.metrics.inc("serve.collapsed")
                return request
            if self._pending >= self.max_pending:
                self.metrics.inc("serve.rejected")
                raise AdmissionError(
                    f"queue full ({self._pending} pending, "
                    f"bound {self.max_pending})")
            flight = _Flight(key, tenant, shard.store, text, request)
            request._flight = flight
            self._inflight[key] = flight
            self._pending += 1
            self.metrics.inc("serve.submitted")
            self.metrics.inc("serve.flights")
            self.metrics.observe("serve.queue_depth", self._pending)
        self._executor.submit(self._run_flight, flight)
        return request

    def query(self, tenant: str, text: str,
              timeout=_UNSET) -> ServeResult:
        """Submit and wait (the blocking convenience path)."""
        return self.submit(tenant, text).result(timeout)

    async def aquery(self, tenant: str, text: str,
                     timeout=_UNSET) -> ServeResult:
        """The asyncio face: same admission, collapsing and snapshot
        semantics, awaited instead of blocked on."""
        request = self.submit(tenant, text)
        budget = (self.default_timeout if timeout is _UNSET
                  else timeout)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(request.future), budget)
        except asyncio.TimeoutError:
            self.metrics.inc("serve.timeouts")
            raise RequestTimeout(
                f"no result within {budget}s for {text!r}") from None

    # -- writes ---------------------------------------------------------------

    def update_text(self, tenant: str, oid, new_text: str) -> int:
        """Serialized in-database edit; returns the new epoch."""
        store = self._shard(tenant).store
        store.update_text(oid, new_text)
        self.metrics.inc("serve.writes")
        return store.epoch

    def load_text(self, tenant: str, document_text: str,
                  name: str | None = None, validate: bool = True):
        """Serialized document load; returns the new document's oid."""
        store = self._shard(tenant).store
        oid = store.load_text(document_text, name=name,
                              validate=validate)
        self.metrics.inc("serve.writes")
        return oid

    def load_tree(self, tenant: str, tree, name: str | None = None,
                  validate: bool = True):
        store = self._shard(tenant).store
        oid = store.load_tree(tree, name=name, validate=validate)
        self.metrics.inc("serve.writes")
        return oid

    def define_name(self, tenant: str, name: str, value) -> None:
        store = self._shard(tenant).store
        store.define_name(name, value)
        self.metrics.inc("serve.writes")

    # -- execution ------------------------------------------------------------

    def _run_flight(self, flight: _Flight) -> None:
        try:
            value, epoch, conflicts = self._execute(flight)
        except BaseException as exc:
            self._finish(flight, error=exc)
        else:
            self._finish(flight, value=value, epoch=epoch,
                         conflicts=conflicts)

    def _execute(self, flight: _Flight):
        """The snapshot-epoch read protocol (see the module doc)."""
        store = flight.store
        metrics = self.metrics
        _delay("executing", flight)
        conflicts = 0
        shape = flight.key[:2]  # (tenant, cache_key) — epoch-free
        known = self._runtimes.get(shape)
        if known is not None and known >= self.escalate_after:
            # proactive long-read escalation: this query's runtime
            # rivals any realistic write interval, so the optimistic
            # race is a coin it keeps losing — each loss burning a
            # full recompile.  Take the consistent path immediately.
            metrics.inc("serve.escalations")
        else:
            for attempt in range(self.read_retries):
                flight.check_cancelled()
                seq = store.write_seq
                if seq & 1:
                    # writer mid-mutation: yield and resample
                    conflicts += 1
                    metrics.inc("serve.epoch_conflicts")
                    time.sleep(0.0002 * (attempt + 1))
                    continue
                epoch = store.epoch
                _delay("pinned", flight)
                started = time.perf_counter()
                try:
                    value = store.query(flight.text)
                except Exception:
                    if store.write_seq != seq:
                        # the failure happened inside a torn window —
                        # possibly an artifact of racing the writer
                        conflicts += 1
                        metrics.inc("serve.epoch_conflicts")
                        continue
                    raise
                elapsed = time.perf_counter() - started
                self._runtimes[shape] = elapsed
                if store.write_seq == seq:
                    return value, epoch, conflicts
                conflicts += 1
                metrics.inc("serve.epoch_conflicts")
                if elapsed >= self.escalate_after:
                    # reactive flavour of the same policy, for the
                    # first time a long query shape conflicts
                    metrics.inc("serve.escalations")
                    break
        # consistency fallback: exclude writers for one execution (the
        # only point where a reader may briefly delay a writer)
        flight.check_cancelled()
        with store.excluding_writers():
            epoch = store.epoch
            started = time.perf_counter()
            value = store.query(flight.text)
            self._runtimes[shape] = time.perf_counter() - started
        return value, epoch, conflicts

    def _finish(self, flight: _Flight, value=None, epoch: int = -1,
                conflicts: int = 0, error=None) -> None:
        with self._lock:
            flight.done = True
            if self._inflight.get(flight.key) is flight:
                del self._inflight[flight.key]
            self._pending -= 1
            waiters = list(flight.requests)
        if error is None:
            self.metrics.inc("serve.executed")
        elif isinstance(error, RequestCancelled):
            self.metrics.inc("serve.aborted")
        else:
            self.metrics.inc("serve.errors")
        now = time.perf_counter()
        for request in waiters:
            if request.future.done():
                continue  # cancelled or abandoned waiter
            latency = now - request.submitted_at
            try:
                if error is not None:
                    request.future.set_exception(error)
                else:
                    request.future.set_result(ServeResult(
                        value=value, tenant=flight.tenant, epoch=epoch,
                        collapsed=request is not flight.leader,
                        conflicts=conflicts, latency=latency))
            except Exception:  # pragma: no cover - cancel raced us
                continue
            self.metrics.observe("serve.latency_ms", latency * 1000.0)
            self.metrics.observe(
                f"serve.latency_ms.{flight.tenant}", latency * 1000.0)

    # -- lifecycle / reporting ------------------------------------------------

    def stats(self) -> dict:
        """Structured serving snapshot (qps is lifetime average)."""
        with self._lock:
            pending = self._pending
            inflight = len(self._inflight)
            tenants = len(self._tenants)
        elapsed = time.perf_counter() - self._started_at
        counters = self.metrics.snapshot()["counters"]
        submitted = counters.get("serve.submitted", 0)
        return {
            "tenants": tenants,
            "workers": self.workers,
            "pending": pending,
            "inflight": inflight,
            "submitted": submitted,
            "flights": counters.get("serve.flights", 0),
            "collapsed": counters.get("serve.collapsed", 0),
            "executed": counters.get("serve.executed", 0),
            "epoch_conflicts": counters.get("serve.epoch_conflicts", 0),
            "qps": submitted / elapsed if elapsed > 0 else 0.0,
            "uptime_seconds": elapsed,
        }

    def close(self, wait: bool = True) -> None:
        """Refuse new work and shut the pool down.  ``wait=True``
        drains in-flight executions first."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"QueryServer(tenants={len(self._tenants)}, "
                f"workers={self.workers}, pending={self._pending})")
