"""The inverse mapping: database → SGML (footnote 1 / Section 6).

The paper notes that "the inverse mapping from database
schema/instances to SGML DTD/documents also opens interesting
perspectives for exchanging information between heterogeneous
databases, writing reports, etc." and that "providing the means to
update the document from the database" is a key follow-up.  This module
implements both directions:

* :func:`schema_to_dtd` — regenerate a DTD from a
  :class:`~repro.mapping.dtd_to_schema.MappedSchema` (the shapes the
  mapper recorded make this exact: the original content models are
  reconstructed, including union markers and occurrence indicators);
* :func:`value_to_element` / :func:`export_document` — rebuild an SGML
  element tree from a loaded object, so a document edited *in the
  database* can be re-serialised (unlike the provenance-based
  ``text()``, this reflects updates).
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapping.dtd_to_schema import MappedSchema
from repro.mapping.shapes import (
    ElemShape,
    EmptyShape,
    ListShape,
    OptShape,
    Shape,
    TextShape,
    TupleShape,
    UnionShape,
)
from repro.oodb.instance import Instance
from repro.oodb.values import ListValue, Nil, Oid, TupleValue
from repro.sgml.dtd import ATT_ID, ATT_IDREF, ATT_IDREFS
from repro.sgml.instance import Element


# ---------------------------------------------------------------------------
# schema -> DTD
# ---------------------------------------------------------------------------


def schema_to_dtd(mapped: MappedSchema) -> str:
    """Regenerate DTD text from a mapped schema.

    The result parses back to a DTD whose mapping is equivalent to
    ``mapped`` (round-trip pinned by tests).  Tag-omission indicators
    are not recoverable from the schema; ``- O`` is emitted for every
    element (always well-formed).
    """
    lines = [f"<!DOCTYPE {_element_of(mapped, mapped.doctype_class)} ["]
    for element_name, class_name in mapped.element_class.items():
        shape = mapped.shapes[class_name]
        model = _shape_to_model(shape)
        lines.append(f"<!ELEMENT {element_name} - O {model}>")
        attlist = _attlist_text(mapped, class_name)
        if attlist:
            lines.append(f"<!ATTLIST {element_name} {attlist}>")
    lines.append("]>")
    return "\n".join(lines)


def _element_of(mapped: MappedSchema, class_name: str) -> str:
    for element_name, mapped_class in mapped.element_class.items():
        if mapped_class == class_name:
            return element_name
    raise MappingError(f"no element maps to class {class_name!r}")


def _shape_to_model(shape: Shape) -> str:
    if isinstance(shape, EmptyShape):
        return "EMPTY"
    if isinstance(shape, TupleShape):
        if (len(shape.fields) == 1
                and isinstance(shape.fields[0][1], TextShape)):
            return "(#PCDATA)"
        parts = [_shape_to_part(field) for _, field in shape.fields]
        return "(" + ", ".join(parts) + ")"
    if isinstance(shape, UnionShape):
        parts = [_shape_to_part(branch) for _, branch in shape.branches]
        return "(" + " | ".join(parts) + ")"
    return "(" + _shape_to_part(shape) + ")"


def _shape_to_part(shape: Shape) -> str:
    if isinstance(shape, ElemShape):
        return shape.element_name
    if isinstance(shape, TextShape):
        return "#PCDATA"
    if isinstance(shape, OptShape):
        return _shape_to_part(shape.child) + "?"
    if isinstance(shape, ListShape):
        indicator = "+" if shape.at_least_one else "*"
        return _shape_to_part(shape.element) + indicator
    if isinstance(shape, TupleShape):
        return ("(" + ", ".join(_shape_to_part(f)
                                for _, f in shape.fields) + ")")
    if isinstance(shape, UnionShape):
        return ("(" + " | ".join(_shape_to_part(b)
                                 for _, b in shape.branches) + ")")
    raise MappingError(f"cannot invert shape {shape!r}")


def _attlist_text(mapped: MappedSchema, class_name: str) -> str:
    pieces = []
    for name in mapped.private_attributes.get(class_name, ()):
        definition = mapped.attribute_definitions[(class_name, name)]
        if definition.kind == "NAME_GROUP":
            declared = "(" + " | ".join(definition.allowed_values) + ")"
        else:
            declared = definition.kind
        if definition.has_default and definition.default_value:
            default = f'"{definition.default_value}"'
        else:
            default = definition.default_kind
        pieces.append(f"{name} {declared} {default}")
    return "\n          ".join(pieces)


# ---------------------------------------------------------------------------
# instance -> document tree
# ---------------------------------------------------------------------------


def export_document(mapped: MappedSchema, instance: Instance,
                    document: Oid,
                    id_tokens: dict | None = None) -> Element:
    """Rebuild the SGML tree of a loaded (possibly updated) document.

    ``id_tokens`` maps oid numbers to the original ID attribute tokens
    (see :attr:`DocumentLoader.id_tokens`); without it, synthetic
    ``id<N>`` tokens are emitted for cross references.
    """
    return value_to_element(mapped, instance, document, id_tokens)


def value_to_element(mapped: MappedSchema, instance: Instance,
                     oid: Oid, id_tokens: dict | None = None) -> Element:
    """Rebuild the SGML element for one object (recursively)."""
    if not isinstance(oid, Oid):
        raise MappingError(f"expected an object, got {oid!r}")
    class_name = oid.class_name
    element_name = _element_of(mapped, class_name)
    shape = mapped.shapes[class_name]
    value = instance.deref(oid)
    element = Element(element_name)
    tokens = id_tokens or {}
    _emit_content(mapped, instance, shape, value, element, tokens)
    _emit_attributes(mapped, instance, class_name, value, element,
                     tokens, oid.number)
    return element


def _emit_content(mapped: MappedSchema, instance: Instance,
                  shape: Shape, value: object, element: Element,
                  id_tokens: dict) -> None:
    if isinstance(shape, EmptyShape):
        return
    if isinstance(shape, TupleShape):
        if not isinstance(value, TupleValue):
            raise MappingError(
                f"<{element.name}> value is not a tuple: {value!r}")
        for name, field_shape in shape.fields:
            _emit_content(mapped, instance, field_shape,
                          value.get(name), element, id_tokens)
        return
    if isinstance(shape, UnionShape):
        if not (isinstance(value, TupleValue) and value.is_marked):
            raise MappingError(
                f"<{element.name}> union value is not marked: {value!r}")
        marker = value.marker
        for branch_marker, branch_shape in shape.branches:
            if branch_marker == marker:
                _emit_content(mapped, instance, branch_shape,
                              value.marked_value, element, id_tokens)
                return
        raise MappingError(
            f"unknown marker {marker!r} in <{element.name}>")
    if isinstance(shape, ListShape):
        if not isinstance(value, ListValue):
            raise MappingError(
                f"<{element.name}> expected a list, got {value!r}")
        for item in value:
            _emit_content(mapped, instance, shape.element, item,
                          element, id_tokens)
        return
    if isinstance(shape, OptShape):
        if isinstance(value, Nil):
            return
        _emit_content(mapped, instance, shape.child, value, element,
                      id_tokens)
        return
    if isinstance(shape, ElemShape):
        if isinstance(value, Nil):
            return
        if not isinstance(value, Oid):
            raise MappingError(
                f"<{element.name}> expected an object for "
                f"<{shape.element_name}>, got {value!r}")
        element.append(
            value_to_element(mapped, instance, value, id_tokens))
        return
    if isinstance(shape, TextShape):
        if isinstance(value, str) and value:
            element.append_text(value)
        return
    raise MappingError(f"cannot export shape {shape!r}")


def _emit_attributes(mapped: MappedSchema, instance: Instance,
                     class_name: str, value: object, element: Element,
                     id_tokens: dict, owner: int) -> None:
    names = mapped.private_attributes.get(class_name, ())
    if not names or not isinstance(value, TupleValue):
        return
    payload = value
    if payload.is_marked and isinstance(payload.marked_value, TupleValue):
        payload = payload.marked_value
    for name in names:
        definition = mapped.attribute_definitions[(class_name, name)]
        if not payload.has_attribute(name):
            continue
        attribute_value = payload.get(name)
        if isinstance(attribute_value, Nil):
            continue
        if definition.kind == ATT_ID:
            # the value is the database-only back-reference list; what
            # the document needs is the ID *token* of this element —
            # re-emit the original one, or a synthetic token when this
            # object is actually referenced
            token = id_tokens.get(owner)
            if token is None and isinstance(attribute_value, ListValue) \
                    and len(attribute_value):
                token = f"id{owner}"
            if token is not None:
                element.attributes[name] = token
            continue
        if definition.kind == ATT_IDREF:
            # emit the referenced element's ID token when recoverable
            token = _id_token_of(attribute_value, id_tokens)
            if token is not None:
                element.attributes[name] = token
            continue
        if definition.kind == ATT_IDREFS:
            tokens = [
                t for t in (_id_token_of(target, id_tokens)
                            for target in attribute_value)
                if t is not None]
            if tokens:
                element.attributes[name] = " ".join(tokens)
            continue
        element.attributes[name] = str(attribute_value)


def _id_token_of(target: object, id_tokens: dict) -> str | None:
    if isinstance(target, Oid):
        return id_tokens.get(target.number, f"id{target.number}")
    return None
