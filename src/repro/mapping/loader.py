"""Load parsed documents into the database (the semantic actions of
Section 3).

:class:`DocumentLoader` owns an :class:`~repro.oodb.instance.Instance`
over a :class:`~repro.mapping.dtd_to_schema.MappedSchema` and loads any
number of documents into it, appending each to the persistence root
(``Articles`` in Figure 3).  Loading is structure-directed: the shape the
mapper recorded for each class replays the content model against the
element's actual children.

Cross references are resolved in a second pass: an ``IDREF`` attribute
becomes an object reference and the target's ``ID`` attribute becomes the
list of objects referencing it (Figure 3's ``reflabel: Object`` /
``label: list (Object)``).

The loader also records, for every created object, the source
:class:`~repro.sgml.instance.Element` — the provenance the ``text()``
inverse operator uses.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapping.dtd_to_schema import MappedSchema
from repro.mapping.shapes import (
    ElemShape,
    EmptyShape,
    ListShape,
    OptShape,
    Shape,
    TextShape,
    TupleShape,
    UnionShape,
)
from repro.oodb.instance import Instance
from repro.oodb.values import ListValue, NIL, Oid, TupleValue
from repro.sgml.dtd import ATT_ID, ATT_IDREF, ATT_IDREFS, ATT_NUMBER
from repro.sgml.instance import Element, Node, Text


class DocumentLoader:
    """Loads documents into one shared instance."""

    def __init__(self, mapped: MappedSchema) -> None:
        self.mapped = mapped
        self.instance = Instance(mapped.schema)
        self.instance.set_root(mapped.root_name, ListValue())
        #: oid number -> source Element (provenance for ``text()``).
        self.provenance: dict[int, Element] = {}
        self._ids: dict[str, Oid] = {}
        self._trail: list[Oid] = []
        self._pending_refs: list[tuple[Oid, str, str, bool]] = []

    @property
    def id_tokens(self) -> dict[int, str]:
        """oid number → the SGML ID token that named it (for the
        inverse mapping)."""
        return {oid.number: token for token, oid in self._ids.items()}

    def load(self, root: Element) -> Oid:
        """Load one document tree; returns the document object's oid and
        appends it to the persistence root."""
        expected = self.mapped.doctype_class
        actual = self.mapped.class_for(root.name)
        if actual != expected:
            raise MappingError(
                f"document element {root.name!r} maps to {actual!r}, "
                f"root expects {expected!r}")
        oid = self._load_element(root)
        self._resolve_references()
        current = self.instance.root(self.mapped.root_name)
        self.instance.set_root(
            self.mapped.root_name, current + ListValue([oid]))
        return oid

    # -- recursive element loading -----------------------------------------

    def _load_element(self, element: Element) -> Oid:
        class_name = self.mapped.class_for(element.name)
        shape = self.mapped.shape_for_class(class_name)
        oid = self.instance.new_object(class_name)
        self._trail.append(oid)
        self.provenance[oid.number] = element
        cursor = _Children(element.children)
        if isinstance(shape, UnionShape):
            # A class-level union (e.g. Section): the chosen branch must
            # account for the element's *entire* content, so a branch
            # that matches only a prefix (a1 on an a2-shaped section) is
            # rejected and the next branch is tried.
            value = self._load_whole_union(shape, cursor, element)
        else:
            value = self._load_shape(shape, cursor, element)
        if not cursor.at_end():
            leftover = cursor.peek()
            raise MappingError(
                f"unconsumed content in <{element.name}>: {leftover!r}")
        value = self._attach_attributes(class_name, element, value, oid)
        self.instance.set_value(oid, value)
        return oid

    def _checkpoint(self) -> int:
        return len(self._trail)

    def _rollback(self, mark: int) -> None:
        """Remove objects allocated by an abandoned branch attempt."""
        for oid in self._trail[mark:]:
            self.instance.remove_object(oid)
            self.provenance.pop(oid.number, None)
        del self._trail[mark:]

    def _load_whole_union(self, shape: UnionShape, cursor: "_Children",
                          element: Element) -> TupleValue:
        for marker, branch in shape.branches:
            saved = cursor.position
            mark = self._checkpoint()
            try:
                value = self._load_shape(branch, cursor, element)
            except MappingError:
                cursor.position = saved
                self._rollback(mark)
                continue
            if cursor.at_end():
                return TupleValue([(marker, value)])
            cursor.position = saved
            self._rollback(mark)
        raise MappingError(
            f"no union branch matches the full content of "
            f"<{element.name}>")

    def _load_shape(self, shape: Shape, cursor: "_Children",
                    element: Element) -> object:
        if isinstance(shape, EmptyShape):
            return TupleValue([("data", NIL)])
        if isinstance(shape, TupleShape):
            fields = []
            for name, field_shape in shape.fields:
                fields.append(
                    (name, self._load_shape(field_shape, cursor, element)))
            return TupleValue(fields)
        if isinstance(shape, UnionShape):
            for marker, branch in shape.branches:
                saved = cursor.position
                mark = self._checkpoint()
                try:
                    value = self._load_shape(branch, cursor, element)
                except MappingError:
                    cursor.position = saved
                    self._rollback(mark)
                    continue
                return TupleValue([(marker, value)])
            raise MappingError(
                f"no union branch matches content of <{element.name}>")
        if isinstance(shape, ListShape):
            items = []
            while True:
                saved = cursor.position
                mark = self._checkpoint()
                try:
                    items.append(
                        self._load_shape(shape.element, cursor, element))
                except MappingError:
                    cursor.position = saved
                    self._rollback(mark)
                    break
            if shape.at_least_one and not items:
                raise MappingError(
                    f"expected at least one {shape.element} in "
                    f"<{element.name}>")
            return ListValue(items)
        if isinstance(shape, OptShape):
            saved = cursor.position
            mark = self._checkpoint()
            try:
                return self._load_shape(shape.child, cursor, element)
            except MappingError:
                cursor.position = saved
                self._rollback(mark)
                return NIL
        if isinstance(shape, ElemShape):
            child = cursor.peek()
            if (isinstance(child, Element)
                    and child.name == shape.element_name):
                cursor.advance()
                return self._load_element(child)
            raise MappingError(
                f"expected <{shape.element_name}> in <{element.name}>, "
                f"found {child!r}")
        if isinstance(shape, TextShape):
            if shape.single:
                child = cursor.peek()
                if isinstance(child, Text):
                    cursor.advance()
                    return child.content
                raise MappingError(
                    f"expected character data in <{element.name}>")
            pieces = []
            while isinstance(cursor.peek(), Text):
                pieces.append(cursor.advance().content)
            return " ".join(pieces) if pieces else ""
        raise MappingError(f"unknown shape {shape!r}")

    # -- attributes -----------------------------------------------------------

    def _attach_attributes(self, class_name: str, element: Element,
                           value: object, oid: Oid) -> object:
        names = self.mapped.private_attributes.get(class_name, ())
        if not names:
            return value
        fields = []
        for name in names:
            definition = self.mapped.attribute_definitions[
                (class_name, name)]
            raw = element.attributes.get(name)
            if definition.kind == ATT_ID:
                if raw is not None:
                    self._ids[raw] = oid
                fields.append((name, ListValue()))
            elif definition.kind == ATT_IDREF:
                if raw is not None:
                    self._pending_refs.append((oid, name, raw, False))
                fields.append((name, NIL))
            elif definition.kind == ATT_IDREFS:
                if raw is not None:
                    for token in raw.split():
                        self._pending_refs.append((oid, name, token, True))
                fields.append((name, ListValue()))
            elif raw is None:
                fields.append((name, NIL))
            elif definition.kind == ATT_NUMBER:
                try:
                    fields.append((name, int(raw)))
                except ValueError:
                    raise MappingError(
                        f"attribute {name!r} of <{element.name}> is not "
                        f"a number: {raw!r}") from None
            else:
                fields.append((name, raw))
        # Union-typed content: the attributes live inside the chosen
        # branch (the mapper attached them to every tuple branch).
        if (isinstance(value, TupleValue) and value.is_marked
                and isinstance(value.marked_value, TupleValue)
                and self.mapped.schema.structure(class_name).is_union()):
            branch = value.marked_value
            return TupleValue([
                (value.marker,
                 TupleValue(list(branch.fields) + fields))])
        if isinstance(value, TupleValue):
            return TupleValue(list(value.fields) + fields)
        raise MappingError(
            f"cannot attach attributes to value of class {class_name!r}")

    def _resolve_references(self) -> None:
        for oid, field, reference, multi in self._pending_refs:
            target = self._ids.get(reference)
            if target is None:
                raise MappingError(
                    f"IDREF {reference!r} matches no ID in the corpus")
            value = self.instance.deref(oid)
            if not isinstance(value, TupleValue):
                raise MappingError(
                    f"object {oid!r} has no attribute {field!r}")
            if multi:
                existing = value.get(field)
                updated = value.replace(
                    field, existing + ListValue([target]))
            else:
                updated = value.replace(field, target)
            self.instance.set_value(oid, updated)
            # Inverse reference: append to the target's ID list attribute.
            self._append_backreference(target, oid)
        self._pending_refs.clear()

    def _append_backreference(self, target: Oid, source: Oid) -> None:
        target_class = target.class_name
        names = self.mapped.private_attributes.get(target_class, ())
        for name in names:
            definition = self.mapped.attribute_definitions.get(
                (target_class, name))
            if definition is not None and definition.kind == ATT_ID:
                value = self.instance.deref(target)
                existing = value.get(name)
                self.instance.set_value(
                    target, value.replace(
                        name, existing + ListValue([source])))
                return


class _Children:
    """A cursor over an element's children, skipping nothing."""

    __slots__ = ("nodes", "position")

    def __init__(self, nodes: list[Node]) -> None:
        self.nodes = nodes
        self.position = 0

    def peek(self) -> Node | None:
        if self.position < len(self.nodes):
            return self.nodes[self.position]
        return None

    def advance(self) -> Node:
        node = self.nodes[self.position]
        self.position += 1
        return node

    def at_end(self) -> bool:
        return self.position >= len(self.nodes)


def load_document(mapped: MappedSchema, root: Element) -> DocumentLoader:
    """One-call convenience: a fresh loader with one document loaded."""
    loader = DocumentLoader(mapped)
    loader.load(root)
    return loader
