"""The SGML → OODB mapping (Section 3).

* :mod:`repro.mapping.dtd_to_schema` — compile a DTD into an O₂-style
  schema with constraints (regenerates Figure 3 from Figure 1),
* :mod:`repro.mapping.loader` — load parsed document instances as
  database objects (the "semantic actions" of the paper's annotated
  grammar),
* :mod:`repro.mapping.text_inverse` — the system-supplied ``text()``
  operator mapping a logical object back to its textual content,
* :mod:`repro.mapping.naming` — class/field naming conventions and
  system-supplied markers.
"""

from repro.mapping.dtd_to_schema import MappedSchema, map_dtd
from repro.mapping.inverse import (
    export_document,
    schema_to_dtd,
    value_to_element,
)
from repro.mapping.loader import DocumentLoader, load_document
from repro.mapping.naming import class_name_for, plural_field_name
from repro.mapping.text_inverse import text_of

__all__ = [
    "DocumentLoader", "MappedSchema", "class_name_for",
    "export_document", "load_document", "map_dtd", "plural_field_name",
    "schema_to_dtd", "text_of", "value_to_element",
]
