"""Loading shapes — the bridge between content models and values.

The DTD → schema compiler produces, for every class, both a *type* (what
the schema declares) and a *shape* (how to build a value of that type
from a parsed element's children).  Shapes mirror the content model with
the field/marker names the mapping assigned, so the loader is a single
structure-directed recursion — exactly the "semantic actions annotating
the grammar" of Section 3.
"""

from __future__ import annotations

from typing import Iterable


class Shape:
    """Base class of loading shapes."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class ElemShape(Shape):
    """Consume one child element and load it as an object."""

    def __init__(self, element_name: str) -> None:
        self.element_name = element_name

    def __str__(self) -> str:
        return f"<{self.element_name}>"


class TextShape(Shape):
    """Consume character data.

    ``single`` consumes exactly one text node (mixed content);
    otherwise all remaining text in the element is concatenated.
    """

    def __init__(self, single: bool = False) -> None:
        self.single = single

    def __str__(self) -> str:
        return "#TEXT1" if self.single else "#TEXT"


class TupleShape(Shape):
    """Named fields loaded in order into an ordered tuple."""

    def __init__(self, fields: Iterable[tuple[str, Shape]]) -> None:
        self.fields = tuple(fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {s}" for n, s in self.fields)
        return f"[{inner}]"


class UnionShape(Shape):
    """Marked alternatives; the loader picks the branch that consumes."""

    def __init__(self, branches: Iterable[tuple[str, Shape]]) -> None:
        self.branches = tuple(branches)

    def __str__(self) -> str:
        inner = " + ".join(f"{n}: {s}" for n, s in self.branches)
        return f"({inner})"


class ListShape(Shape):
    """Zero or more repetitions of the element shape."""

    def __init__(self, element: Shape, at_least_one: bool = False) -> None:
        self.element = element
        self.at_least_one = at_least_one

    def __str__(self) -> str:
        return f"{self.element}{'+' if self.at_least_one else '*'}"


class OptShape(Shape):
    """The child shape or ``nil``."""

    def __init__(self, child: Shape) -> None:
        self.child = child

    def __str__(self) -> str:
        return f"{self.child}?"


class EmptyShape(Shape):
    """EMPTY elements: nothing to consume."""

    def __str__(self) -> str:
        return "EMPTY"
