"""Naming conventions of the DTD → schema mapping.

Figure 3 derives class names by capitalising element names
(``subsectn`` → ``Subsectn``), pluralises repeated components
(``author+`` → ``authors``, ``body+`` → ``bodies``) and supplies marker
names ``a1, a2, ...`` for unnamed alternatives ("For unnamed SGML
elements defined through nested parentheses, system supplied names are
provided").
"""

from __future__ import annotations

#: The attribute holding character data in #PCDATA-bearing classes.
TEXT_FIELD = "text"

#: The base class of textual content classes (Figure 3's ``Text``).
TEXT_CLASS = "Text"

#: The base class of external/binary content classes (Figure 3's
#: ``Bitmap``, inherited by ``Picture``).
BITMAP_CLASS = "Bitmap"

_VOWELS = "aeiou"


def class_name_for(element_name: str) -> str:
    """``article`` → ``Article``; already-capitalised names unchanged."""
    if not element_name:
        return element_name
    return element_name[0].upper() + element_name[1:]


def plural_field_name(element_name: str) -> str:
    """``author`` → ``authors``, ``body`` → ``bodies``."""
    if (len(element_name) >= 2 and element_name.endswith("y")
            and element_name[-2] not in _VOWELS):
        return element_name[:-1] + "ies"
    if element_name.endswith(("s", "x", "z", "ch", "sh")):
        return element_name + "es"
    return element_name + "s"


class MarkerSupply:
    """Deterministic supply of system marker names ``a1, a2, ...``."""

    def __init__(self) -> None:
        self._next = 1

    def fresh(self) -> str:
        name = f"a{self._next}"
        self._next += 1
        return name
