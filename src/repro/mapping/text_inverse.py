"""The system-supplied ``text()`` operator (Section 4.2 / [ref 5]).

Q2 evaluates ``contains`` "not over individual data objects but over
complex logical objects"; ``text()`` performs the inverse mapping from a
logical object (or any value) back to the corresponding portion of text.

Two strategies are available:

* **provenance** — when the value is an object the loader created, its
  source SGML subtree is re-serialised (exact inverse mapping);
* **structural** — otherwise the value tree is walked, concatenating
  every string encountered (dereferencing objects, at most once each, so
  cyclic cross references terminate).
"""

from __future__ import annotations

from repro.oodb.values import ListValue, Nil, Oid, SetValue, TupleValue


def text_of(value: object, instance=None, provenance=None) -> str:
    """The textual content of a value/logical object.

    ``provenance`` is the loader's ``oid number -> source Element`` map;
    when it covers the value, the original document text is returned.
    """
    if provenance is not None and isinstance(value, Oid):
        # single atomic lookup: update_text clears the provenance map
        # concurrently with readers, so a membership test followed by a
        # subscript could land on either side of the clear
        element = provenance.get(value.number)
        if element is not None:
            return element.text_content()
    pieces: list[str] = []
    _collect(value, instance, set(), pieces)
    return " ".join(piece for piece in pieces if piece)


def _collect(value: object, instance, visited: set[int],
             pieces: list[str]) -> None:
    if isinstance(value, str):
        pieces.append(value)
    elif isinstance(value, (int, float, bool, Nil)):
        return
    elif isinstance(value, Oid):
        if instance is None or value.number in visited:
            return
        visited.add(value.number)
        _collect(instance.deref(value), instance, visited, pieces)
    elif isinstance(value, TupleValue):
        for _, field in value.fields:
            _collect(field, instance, visited, pieces)
    elif isinstance(value, (ListValue, SetValue)):
        for element in value:
            _collect(element, instance, visited, pieces)
