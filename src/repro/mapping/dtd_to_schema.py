"""Compile a DTD into an O₂-style schema (Section 3 / Figure 3).

The mapping rules, as presented in the paper:

* each element declaration becomes a class (``article`` → ``Article``);
* #PCDATA elements inherit from a ``Text`` base class, EMPTY elements
  (external data) from ``Bitmap``;
* sequence connectors become **ordered tuples**; components qualified
  with ``+``/``*`` become lists (with pluralised field names), ``?``
  components may be nil;
* the choice connector becomes a **marked union**; alternatives that are
  bare elements are marked by the element name (``Body``), unnamed
  alternatives get system-supplied markers ``a1, a2, ...`` (``Section``);
* the ``&`` connector expands into a union over the orderings of its
  parts — exactly the ``Letters`` typing of Section 5.3;
* attributes become *private* tuple fields: enumerations map to strings
  with ``in set(...)`` constraints, ``ID`` to the list of referencing
  objects, ``IDREF`` to an object reference, ``NUMBER`` to integer;
* occurrence indicators and required attributes that the type system
  cannot capture become constraints (``!= nil``, ``!= list()``).
"""

from __future__ import annotations

import itertools

from repro.errors import MappingError
from repro.oodb.constraints import (
    Constraint,
    ConstraintSet,
    Disjunction,
    NotEmpty,
    NotNil,
    OneOf,
)
from repro.oodb.schema import ClassHierarchy, Schema
from repro.oodb.types import (
    ANY,
    INTEGER,
    ListType,
    STRING,
    TupleType,
    Type,
    UnionType,
    c,
    list_of,
)
from repro.mapping.naming import (
    BITMAP_CLASS,
    MarkerSupply,
    TEXT_CLASS,
    TEXT_FIELD,
    class_name_for,
    plural_field_name,
)
from repro.mapping.shapes import (
    ElemShape,
    EmptyShape,
    ListShape,
    OptShape,
    Shape,
    TextShape,
    TupleShape,
    UnionShape,
)
from repro.sgml.contentmodel import (
    AndGroup,
    AnyContent,
    Choice,
    ContentModel,
    ElementRef,
    Empty,
    Opt,
    PCData,
    Plus,
    Seq,
    Star,
)
from repro.sgml.dtd import (
    ATT_CDATA,
    ATT_ENTITY,
    ATT_ID,
    ATT_IDREF,
    ATT_IDREFS,
    ATT_NAME_GROUP,
    ATT_NMTOKEN,
    ATT_NMTOKENS,
    ATT_NUMBER,
    AttDef,
    Dtd,
)

#: Cap on the ``&``-connector permutation expansion at the type level.
MAX_ORDERINGS = 24


class MappedSchema:
    """The result of :func:`map_dtd` — everything the loader and the
    query engine need."""

    def __init__(self, schema: Schema, constraints: ConstraintSet,
                 shapes: dict[str, Shape],
                 element_class: dict[str, str],
                 private_attributes: dict[str, tuple[str, ...]],
                 attribute_definitions: dict[tuple[str, str], AttDef],
                 root_name: str, doctype_class: str) -> None:
        self.schema = schema
        self.constraints = constraints
        self.shapes = shapes
        self.element_class = element_class
        self.private_attributes = private_attributes
        self.attribute_definitions = attribute_definitions
        self.root_name = root_name
        self.doctype_class = doctype_class

    def class_for(self, element_name: str) -> str:
        try:
            return self.element_class[element_name]
        except KeyError:
            raise MappingError(
                f"element {element_name!r} has no mapped class") from None

    def shape_for_class(self, class_name: str) -> Shape:
        return self.shapes[class_name]

    def is_private(self, class_name: str, attribute: str) -> bool:
        return attribute in self.private_attributes.get(class_name, ())


def map_dtd(dtd: Dtd) -> MappedSchema:
    """Compile ``dtd`` into a :class:`MappedSchema`."""
    if not dtd.elements:
        raise MappingError("cannot map an empty DTD")
    builder = _Builder(dtd)
    return builder.build()


class _Builder:
    def __init__(self, dtd: Dtd) -> None:
        self.dtd = dtd
        self.classes: dict[str, Type] = {
            TEXT_CLASS: TupleType([(TEXT_FIELD, STRING)]),
            BITMAP_CLASS: TupleType([("data", STRING)]),
        }
        self.parents: dict[str, list[str]] = {}
        self.constraints = ConstraintSet()
        self.shapes: dict[str, Shape] = {}
        self.element_class: dict[str, str] = {}
        self.private_attributes: dict[str, tuple[str, ...]] = {}
        self.attribute_definitions: dict[tuple[str, str], AttDef] = {}

    def build(self) -> MappedSchema:
        for element_name in self.dtd.element_names:
            self._map_element(element_name)
        doctype = self.dtd.doctype or next(iter(self.dtd.element_names))
        doctype_class = self.element_class[doctype]
        root_name = class_name_for(plural_field_name(doctype))
        roots = {root_name: list_of(c(doctype_class))}
        schema = Schema(ClassHierarchy(self.classes, self.parents),
                        roots=roots)
        return MappedSchema(
            schema, self.constraints, self.shapes, self.element_class,
            self.private_attributes, self.attribute_definitions,
            root_name, doctype_class)

    # -- per element ---------------------------------------------------------

    def _map_element(self, element_name: str) -> None:
        declaration = self.dtd.element(element_name)
        class_name = class_name_for(element_name)
        if class_name in self.classes:
            raise MappingError(
                f"class name collision on {class_name!r}")
        self.element_class[element_name] = class_name
        supply = MarkerSupply()
        model = declaration.model

        if isinstance(model, PCData):
            content_type: Type = TupleType([(TEXT_FIELD, STRING)])
            shape: Shape = TupleShape([(TEXT_FIELD, TextShape())])
            content_constraints: list[Constraint] = []
            self.parents[class_name] = [TEXT_CLASS]
        elif isinstance(model, Empty):
            content_type = TupleType([("data", STRING)])
            shape = EmptyShape()
            content_constraints = []
            self.parents[class_name] = [BITMAP_CLASS]
        elif isinstance(model, AnyContent):
            # ANY content: a list of arbitrary objects or text chunks.
            content_type = ListType(
                UnionType([(TEXT_FIELD, STRING), ("element", ANY)]))
            shape = ListShape(UnionShape(
                [(TEXT_FIELD, TextShape(single=True))]
                + [(name, ElemShape(name))
                   for name in self.dtd.element_names]))
            content_constraints = []
        else:
            content_type, shape, content_constraints = self._map_model(
                model, supply, top_level=True)

        content_type, shape = self._append_attributes(
            element_name, class_name, content_type, shape)
        self.classes[class_name] = content_type
        self.shapes[class_name] = shape
        for constraint in content_constraints:
            self.constraints.add(class_name, constraint)
        self._attribute_constraints(element_name, class_name)

    # -- content models -------------------------------------------------------

    def _map_model(self, model: ContentModel, supply: MarkerSupply,
                   top_level: bool = False
                   ) -> tuple[Type, Shape, list[Constraint]]:
        """Map a content model to (type, shape, class-level constraints)."""
        if isinstance(model, (Seq, AndGroup)):
            return self._map_sequence(model, supply)
        if isinstance(model, Choice):
            return self._map_choice(model, supply)
        if isinstance(model, (ElementRef, PCData, Opt, Plus, Star)):
            # A model that is a single component: wrap in a 1-field tuple
            # so the class still has named structure.
            name, field_type, field_shape, constraints = (
                self._map_component(model, supply))
            return (TupleType([(name, field_type)]),
                    TupleShape([(name, field_shape)]),
                    constraints)
        raise MappingError(f"cannot map content model {model}")

    def _map_sequence(self, model: ContentModel, supply: MarkerSupply
                      ) -> tuple[Type, Shape, list[Constraint]]:
        """Map a Seq/AndGroup; ``&`` parts expand into orderings."""
        orderings = self._orderings(model)
        if len(orderings) == 1:
            return self._map_fixed_sequence(orderings[0], supply)
        # Union over the orderings (the Letters typing of Section 5.3).
        branch_results = []
        for ordering in orderings:
            branch_results.append(
                self._map_fixed_sequence(ordering, supply.__class__()))
        branches: list[tuple[str, Type]] = []
        shape_branches: list[tuple[str, Shape]] = []
        alternatives: list[list[Constraint]] = []
        marker_supply = MarkerSupply()
        for branch_type, branch_shape, branch_constraints in branch_results:
            marker = marker_supply.fresh()
            branches.append((marker, branch_type))
            shape_branches.append((marker, branch_shape))
            alternatives.append(
                [_prefix_constraint(constraint, marker)
                 for constraint in branch_constraints])
        union = UnionType(branches)
        shape = UnionShape(shape_branches)
        constraints: list[Constraint] = []
        if any(alternatives) and all(
                alternative for alternative in alternatives):
            constraints.append(Disjunction(*alternatives))
        return union, shape, constraints

    def _orderings(self, model: ContentModel) -> list[tuple]:
        """All component orderings once ``&`` groups are permuted."""
        if isinstance(model, Seq):
            parts = model.parts
        elif isinstance(model, AndGroup):
            parts = (model,)
        else:
            parts = (model,)
        per_part: list[list[tuple]] = []
        for part in parts:
            if isinstance(part, AndGroup):
                per_part.append(
                    [perm for perm in itertools.permutations(part.parts)])
            else:
                per_part.append([(part,)])
        orderings = []
        for combination in itertools.product(*per_part):
            flat: list[ContentModel] = []
            for chunk in combination:
                flat.extend(chunk)
            orderings.append(tuple(flat))
            if len(orderings) > MAX_ORDERINGS:
                raise MappingError(
                    "too many '&' orderings to expand "
                    f"(more than {MAX_ORDERINGS})")
        return orderings

    def _map_fixed_sequence(self, parts: tuple, supply: MarkerSupply
                            ) -> tuple[TupleType, TupleShape,
                                       list[Constraint]]:
        fields: list[tuple[str, Type]] = []
        shape_fields: list[tuple[str, Shape]] = []
        constraints: list[Constraint] = []
        used: set[str] = set()
        for part in parts:
            name, field_type, field_shape, field_constraints = (
                self._map_component(part, supply))
            base = name
            bump = 2
            while name in used:
                name = f"{base}{bump}"
                bump += 1
            used.add(name)
            fields.append((name, field_type))
            shape_fields.append((name, field_shape))
            constraints.extend(
                _retarget_constraint(constraint, name)
                for constraint in field_constraints)
        return TupleType(fields), TupleShape(shape_fields), constraints

    def _map_choice(self, model: Choice, supply: MarkerSupply
                    ) -> tuple[UnionType, UnionShape, list[Constraint]]:
        named = all(isinstance(part, (ElementRef, PCData))
                    for part in model.parts)
        branches: list[tuple[str, Type]] = []
        shape_branches: list[tuple[str, Shape]] = []
        alternatives: list[list[Constraint]] = []
        for part in model.parts:
            if named and isinstance(part, PCData):
                # Mixed content: the text alternative of the union.
                marker = TEXT_FIELD
                branch_type: Type = STRING
                branch_shape: Shape = TextShape(single=True)
                branch_constraints: list[Constraint] = []
            elif named:
                marker = part.name
                branch_type = c(class_name_for(part.name))
                branch_shape = ElemShape(part.name)
                branch_constraints = [NotNil(marker)]
            else:
                marker = supply.fresh()
                branch_type, branch_shape, inner = self._map_model(
                    part, supply)
                branch_constraints = [
                    _prefix_constraint(constraint, marker)
                    for constraint in inner]
            branches.append((marker, branch_type))
            shape_branches.append((marker, branch_shape))
            alternatives.append(branch_constraints)
        constraints: list[Constraint] = []
        if all(alternatives):
            constraints.append(Disjunction(*alternatives))
        return (UnionType(branches), UnionShape(shape_branches),
                constraints)

    def _map_component(self, part: ContentModel, supply: MarkerSupply
                       ) -> tuple[str, Type, Shape, list[Constraint]]:
        """One component of a sequence → (field name, type, shape,
        constraints on that field)."""
        if isinstance(part, ElementRef):
            return (part.name, c(class_name_for(part.name)),
                    ElemShape(part.name), [NotNil(part.name)])
        if isinstance(part, PCData):
            return TEXT_FIELD, STRING, TextShape(), []
        if isinstance(part, Opt):
            name, field_type, field_shape, __ = self._map_component(
                part.child, supply)
            return name, field_type, OptShape(field_shape), []
        if isinstance(part, (Plus, Star)):
            name, element_type, element_shape, __ = self._map_component(
                part.child, supply)
            if isinstance(part.child, ElementRef):
                plural = plural_field_name(part.child.name)
            elif (isinstance(part.child, Choice)
                  and any(isinstance(p, PCData)
                          for p in part.child.parts)):
                plural = plural_field_name(TEXT_FIELD)  # mixed content
            else:
                plural = plural_field_name(name)
            at_least_one = isinstance(part, Plus)
            constraints = [NotEmpty(plural)] if at_least_one else []
            return (plural, ListType(element_type),
                    ListShape(element_shape, at_least_one), constraints)
        if isinstance(part, (Choice, Seq, AndGroup)):
            name = supply.fresh()
            group_type, group_shape, inner = self._map_model(part, supply)
            constraints = [
                _prefix_constraint(constraint, name)
                for constraint in inner]
            constraints.append(NotNil(name))
            return name, group_type, group_shape, constraints
        raise MappingError(f"cannot map component {part}")

    # -- attributes -----------------------------------------------------------

    def _append_attributes(self, element_name: str, class_name: str,
                           content_type: Type, shape: Shape
                           ) -> tuple[Type, Shape]:
        attlist = self.dtd.attlist(element_name)
        if attlist is None or not len(attlist):
            self.private_attributes[class_name] = ()
            return content_type, shape
        names = []
        extra_fields: list[tuple[str, Type]] = []
        for definition in attlist:
            names.append(definition.name)
            extra_fields.append(
                (definition.name, _attribute_type(definition)))
            self.attribute_definitions[(class_name, definition.name)] = (
                definition)
        self.private_attributes[class_name] = tuple(names)
        if isinstance(content_type, TupleType):
            merged = TupleType(list(content_type.fields) + extra_fields)
            return merged, shape
        if isinstance(content_type, UnionType):
            # Attributes of a union-typed element attach to every branch
            # that is a tuple; non-tuple branches keep the attributes in a
            # wrapper.  (Rare; Figure 3 has no such case.)
            new_branches = []
            for marker, branch in content_type.branches:
                if isinstance(branch, TupleType):
                    new_branches.append(
                        (marker,
                         TupleType(list(branch.fields) + extra_fields)))
                else:
                    new_branches.append((marker, branch))
            return UnionType(new_branches), shape
        raise MappingError(
            f"cannot attach attributes to {content_type}")

    def _attribute_constraints(self, element_name: str,
                               class_name: str) -> None:
        attlist = self.dtd.attlist(element_name)
        if attlist is None:
            return
        union_typed = isinstance(self.classes[class_name], UnionType)
        for definition in attlist:
            if union_typed:
                continue  # attribute paths differ per branch; skip
            if definition.kind == ATT_NAME_GROUP:
                allowed: list[object] = list(definition.allowed_values)
                if not definition.required and not definition.has_default:
                    from repro.oodb.values import NIL
                    allowed.append(NIL)
                self.constraints.add(
                    class_name, OneOf([definition.name], allowed))
            elif definition.required:
                self.constraints.add(
                    class_name, NotNil(definition.name))


def _attribute_type(definition: AttDef) -> Type:
    if definition.kind == ATT_NUMBER:
        return INTEGER
    if definition.kind == ATT_ID:
        return list_of(ANY)     # Figure 3: label: list (Object)
    if definition.kind == ATT_IDREF:
        return ANY              # Figure 3: reflabel: Object
    if definition.kind == ATT_IDREFS:
        return list_of(ANY)
    if definition.kind in (ATT_CDATA, ATT_NMTOKEN, ATT_NMTOKENS,
                           ATT_ENTITY, ATT_NAME_GROUP):
        return STRING
    raise MappingError(f"unmappable attribute kind {definition.kind!r}")


def _prefix_constraint(constraint: Constraint, marker: str) -> Constraint:
    """Re-root a constraint under a union marker (Figure 3's
    ``a1.title != nil`` style)."""
    if isinstance(constraint, NotNil):
        return NotNil(marker, *constraint.path)
    if isinstance(constraint, NotEmpty):
        return NotEmpty(marker, *constraint.path)
    if isinstance(constraint, OneOf):
        return OneOf((marker,) + constraint.path, constraint.allowed)
    if isinstance(constraint, Disjunction):
        return Disjunction(*[
            [_prefix_constraint(inner, marker) for inner in alternative]
            for alternative in constraint.alternatives])
    raise MappingError(f"cannot prefix constraint {constraint!r}")


def _retarget_constraint(constraint: Constraint, name: str) -> Constraint:
    """Point a component constraint at its final field name (handles the
    renaming done for duplicate field names)."""
    if isinstance(constraint, NotNil) and constraint.path:
        return NotNil(name, *constraint.path[1:])
    if isinstance(constraint, NotEmpty) and constraint.path:
        return NotEmpty(name, *constraint.path[1:])
    if isinstance(constraint, OneOf) and constraint.path:
        return OneOf((name,) + tuple(constraint.path[1:]),
                     constraint.allowed)
    if isinstance(constraint, Disjunction):
        return constraint
    return constraint
