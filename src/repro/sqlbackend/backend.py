"""Execute plans against the relational shredding.

:class:`SQLBackend` turns a verified algebra plan into a **hybrid**:
the maximal relational prefix of the plan compiles into SQL statements
(:mod:`repro.sqlbackend.emit`), a :class:`_SQLRowsOp` feed hydrates
the result rows back into ordinary binding dicts, and every operator
outside the relational subset keeps running as plain Python on top —
through the ordinary :func:`repro.algebra.execute.execute_plan`, so
projection, deduplication, profiling and the ``SharedOp`` memo behave
identically to the algebra backend.

The backend *refuses* (raises :class:`SQLUnsupportedError`, so
callers fall back to plan execution) instead of approximating when

* the plan's root is not the standard ``ProjectOp``,
* a touched persistence root shredded non-navigably (node budget,
  suppressed dereference, over-cap dereference chain),
* the program contains structural scans but the context's path
  semantics is not ``restricted``, or its ``max_paths`` budget could
  bite (SQL range scans cannot reproduce the enumeration-limit error
  contract).

Freshness is epoch-gated: :meth:`SQLBackend.execute` calls
:meth:`~repro.sqlbackend.shred.Shred.refresh` first, which is a single
epoch comparison when the store has not changed.
"""

from __future__ import annotations

import copy
from typing import Any, Iterator

from repro.algebra.execute import execute_plan
from repro.algebra.operators import (
    IntervalJoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    SharedOp,
    UnionOp,
    _pad,
)
from repro.errors import SQLExecutionError, SQLUnsupportedError
from repro.oodb.values import TupleValue
from repro.paths.enumeration import RESTRICTED
from repro.paths.steps import Path
from repro.sqlbackend.dialect import Dialect
from repro.sqlbackend.emit import (
    ConstCol,
    Emitter,
    Fragment,
    IntCol,
    PathCol,
    SQLProgram,
    StrCol,
    ValCol,
    _Unsupported,
)
from repro.sqlbackend.shred import Shred


class HybridPlan:
    """One compiled hybrid: the executable plan + its SQL programs."""

    __slots__ = ("plan", "programs", "head")

    def __init__(self, plan: ProjectOp,
                 programs: list[SQLProgram]) -> None:
        self.plan = plan
        self.programs = programs
        self.head = plan.head

    @property
    def sql(self) -> str:
        """The emitted statement(s), for ``explain_analyze``."""
        return "\n\n".join(p.sql for p in self.programs)

    @property
    def prefilters(self) -> int:
        return sum(p.prefilters for p in self.programs)


class _SQLRowsOp(Operator):
    """The feed operator: one SQL statement, hydrated row by row."""

    def __init__(self, backend: "SQLBackend",
                 program: SQLProgram) -> None:
        self.backend = backend
        self.program = program

    def _rows(self, ctx: Any) -> Iterator[dict]:
        return self.backend._stream(self.program,
                                    metrics=ctx.metrics)

    def produces(self) -> frozenset:
        return frozenset(self.program.columns)

    def describe(self, indent: int = 0) -> str:
        variables = ", ".join(
            sorted(str(v) for v in self.program.columns))
        return _pad(indent) + f"SQLRows [{variables}]"


class SQLBackend:
    """The relational execution engine over one instance's shred."""

    def __init__(self, instance: Any, epoch_source: Any = None,
                 dialect: Dialect | None = None,
                 metrics: Any = None) -> None:
        self.instance = instance
        self.metrics = metrics
        self.shred = Shred(instance, epoch_source=epoch_source,
                           dialect=dialect, metrics=metrics)

    # -- compilation -----------------------------------------------------------

    def compile(self, plan: Any, metrics: Any = None) -> HybridPlan:
        """Hybridize a (verified) algebra plan.

        Raises :class:`SQLUnsupportedError` only for a malformed root;
        unsupported *operators* stay in Python instead.  ``metrics``
        overrides the backend's own registry for this compilation (the
        engine passes its per-run registry through)."""
        if metrics is None:
            metrics = self.metrics
        if not isinstance(plan, ProjectOp):
            raise SQLUnsupportedError(
                "plan root is not a projection; refusing to emit")
        emitter = Emitter(self.instance.root_names)
        programs: list[SQLProgram] = []
        memo: dict[int, tuple[str, Any]] = {}

        def feed(fragment: Fragment) -> _SQLRowsOp:
            program = emitter.program(fragment)
            programs.append(program)
            return _SQLRowsOp(self, program)

        def materialize(result: tuple[str, Any]) -> Operator:
            kind, payload = result
            return feed(payload) if kind == "frag" else payload

        def visit(op: Any) -> tuple[str, Any]:
            key = id(op)
            if key in memo:
                return memo[key]
            result = rewrite(op)
            memo[key] = result
            return result

        def rewrite(op: Any) -> tuple[str, Any]:
            if isinstance(op, IntervalJoinOp):
                # scan + vkey prefilter in SQL, the exact recheck atom
                # in Python — the operator's documented fallback path
                try:
                    fragment = emitter.interval_join(op)
                    return ("op", SelectOp(feed(fragment),
                                           op.recheck_atom))
                except _Unsupported:
                    pass
            elif isinstance(op, SharedOp):
                # keep the Python memo wrapper either way, so a shared
                # stream (and its statement) still runs only once
                clone = copy.copy(op)
                try:
                    clone.child = feed(emitter.emit(op.child))
                except _Unsupported:
                    clone.child = materialize(visit(op.child))
                return ("op", clone)
            else:
                try:
                    return ("frag", emitter.emit(op))
                except _Unsupported:
                    pass
            # boundary: this operator runs in Python over its
            # (possibly SQL-fed) child stream
            if isinstance(op, SelectOp):
                kind, payload = visit(op.child)
                if kind == "frag":
                    narrowed = emitter.contains_prefilter(payload,
                                                          op.atom)
                    if narrowed is not None:
                        payload = narrowed
                    child = feed(payload)
                else:
                    child = payload
                clone = copy.copy(op)
                clone.child = child
                return ("op", clone)
            if isinstance(op, UnionOp):
                clone = copy.copy(op)
                clone.branches = [materialize(visit(branch))
                                  for branch in op.branches]
                clone._branch_probes = None
                return ("op", clone)
            if not hasattr(op, "child"):  # pragma: no cover
                raise SQLUnsupportedError(
                    f"cannot hybridize {type(op).__name__}")
            clone = copy.copy(op)
            clone.child = materialize(visit(op.child))
            return ("op", clone)

        child = materialize(visit(plan.child))
        hybrid = HybridPlan(ProjectOp(child, plan.head), programs)
        if metrics is not None:
            metrics.inc("sql.compiles")
            metrics.inc("sql.feeds", len(programs))
            metrics.inc("sql.prefilters", hybrid.prefilters)
        return hybrid

    # -- execution -------------------------------------------------------------

    def execute(self, hybrid: HybridPlan, ctx: Any) -> Any:
        """Refresh the shred, check the guards, run the hybrid plan."""
        self.shred.refresh()
        for program in hybrid.programs:
            self._guard(program, ctx)
        return execute_plan(hybrid.plan, ctx)

    def _guard(self, program: SQLProgram, ctx: Any) -> None:
        for name in program.roots:
            shredded = self.shred.root_shred(name)
            if shredded is not None and not shredded.navigable:
                raise SQLUnsupportedError(
                    f"root {name!r} is not navigable: "
                    f"{shredded.reason}")
        if not program.has_scans:
            return
        if ctx.path_semantics != RESTRICTED:
            raise SQLUnsupportedError(
                "structural SQL scans require restricted path "
                "semantics")
        if ctx.max_paths is not None:
            largest = self.shred.max_root_size(iter(program.roots))
            if largest + 1 > ctx.max_paths:
                raise SQLUnsupportedError(
                    "a shredded root outgrew the enumeration budget; "
                    "only the live walk reproduces the limit error")

    def _stream(self, program: SQLProgram,
                metrics: Any = None) -> Iterator[dict]:
        if metrics is None:
            metrics = self.metrics
        try:
            names, rows = self.shred.execute(program.sql,
                                             program.params)
        except self.shred.dialect.errors() as exc:
            raise SQLExecutionError(
                f"emitted statement failed: {exc}") from exc
        if metrics is not None:
            metrics.inc("sql.statements")
            metrics.inc("sql.rows_fetched", len(rows))
        position = {name: i for i, name in enumerate(names)}
        columns = [(variable, desc)
                   for variable, desc in program.columns.items()]
        shreds = self.shred.roots
        for row in rows:
            binding: dict = {}
            for variable, desc in columns:
                if isinstance(desc, ValCol):
                    shredded = shreds[row[position[desc.root]]]
                    pre = row[position[desc.pre]]
                    if row[position[desc.mode]] == "n":
                        binding[variable] = shredded.values[pre]
                    else:
                        binding[variable] = TupleValue(
                            [(shredded.names[pre],
                              shredded.values[pre])])
                elif isinstance(desc, ConstCol):
                    binding[variable] = desc.value
                elif isinstance(desc, PathCol):
                    shredded = shreds[row[position[desc.root]]]
                    node = row[position[desc.node]]
                    depth = row[position[desc.depth]]
                    binding[variable] = Path._unsafe(
                        shredded.paths[node].steps[depth:])
                elif isinstance(desc, (IntCol, StrCol)):
                    binding[variable] = row[position[desc.col]]
                else:  # pragma: no cover
                    raise SQLExecutionError(
                        f"unknown descriptor {type(desc).__name__}")
            yield binding
