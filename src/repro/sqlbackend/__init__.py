"""Relational backend: shred instances into SQLite, compile plans to SQL.

The paper's Section-6 thesis is that one algebra can serve multiple
physical realizations.  This package adds the relational one:

* :mod:`repro.sqlbackend.dialect` — the thin SQL-dialect seam
  (:class:`SQLiteDialect` in-process today; Postgres can slot in
  behind the same interface),
* :mod:`repro.sqlbackend.shred` — folds the *same*
  :func:`~repro.paths.enumeration.walk_events` stream the structural
  index consumes into ``node``/``sel``/``content``/``attr`` tables
  (the accel pre/post layout, relationally),
* :mod:`repro.sqlbackend.emit` — the plan -> SQL emitter: every
  algebra operator contributes one named subquery (CTE), composed
  bottom-up into a single statement per plan; operators outside the
  relational subset become exact Python post-operators over the
  hydrated rows,
* :mod:`repro.sqlbackend.backend` — execution: freshness off the plan
  cache epoch, result shaping through the ordinary
  :func:`~repro.algebra.execute.execute_plan`, and ``sql.*`` counters.

Unsupported constructs raise
:class:`~repro.errors.SQLUnsupportedError` (a
:class:`~repro.errors.CompilationError`), so the engine falls back to
plan execution and diffcheck coarsens the rejection instead of
reporting a spurious divergence.
"""

from repro.sqlbackend.dialect import Dialect, SQLiteDialect
from repro.sqlbackend.shred import Shred, ShreddedRoot, value_key

__all__ = [
    "Dialect",
    "SQLBackend",
    "SQLProgram",
    "SQLiteDialect",
    "Shred",
    "ShreddedRoot",
    "emit_program",
    "value_key",
]


def __getattr__(name: str) -> object:
    if name in ("SQLBackend",):
        from repro.sqlbackend.backend import SQLBackend
        return SQLBackend
    if name in ("SQLProgram", "emit_program"):
        from repro.sqlbackend import emit
        return getattr(emit, name)
    raise AttributeError(name)
