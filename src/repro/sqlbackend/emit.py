"""Compile algebra plans to SQL over the shredded accel tables.

The emitter walks a plan bottom-up in the raco ``compileme`` idiom:
every operator inside the relational subset contributes one named
subquery (a CTE chained off its child's CTE), and the whole supported
region composes into a *single* statement ``WITH q1 AS (...), ...
SELECT * FROM qN``.  Operators outside the subset are not rejected —
the backend keeps them as ordinary Python operators running on top of
the hydrated row stream (:mod:`repro.sqlbackend.backend`), so the SQL
configuration executes *every* plan the calculus accepts.

The relational encoding of a bound variable is a **descriptor**:

* :class:`ValCol` — a model value named by ``(root, pre)`` plus a
  one-character *mode*: ``'n'`` hydrates the node's own value, ``'h'``
  the one-field heterogeneous wrapper ``[name: value]`` the tuple-as-
  list view synthesizes (those wrappers are not nodes, so they are
  represented as "wrapper over node pre").
* :class:`PathCol` — a relative path: the suffix of the node's
  absolute path from ``depth``.
* :class:`IntCol` / :class:`StrCol` — a plain typed SQL column
  (unnest positions, matched attribute names).
* :class:`ConstCol` — a compile-time constant; no SQL column at all.

Semantics notes, mirrored operator by operator from
:mod:`repro.algebra.operators`:

* structural scans are pre/post interval range predicates
  (``d.pre >= s.pre AND d.pre < s.end_pre``) — the recursive path
  fan-out is already materialized by the shredder's recursive deref
  CTE, so no per-query recursion is needed;
* :class:`~repro.algebra.operators.IntervalJoinOp` becomes the same
  interval theta-join plus a sound ``vkey`` equality prefilter; the
  exact recheck atom always re-runs in Python (the operator documents
  scan + recheck as bit-for-bit equal to the probe path);
* ``contains`` selections gain a content-table prefilter: every
  *required literal word* of the pattern must occur as a substring
  (``instr``) of the candidate string atom — sound because pattern
  tokens are contiguous substrings of the text and literal-word NFA
  matching is exact and case-sensitive (SQLite ``LIKE`` is not, which
  is why ``instr`` is used) — followed by the exact Python recheck.

Intermediate streams may differ from the interpreter's in order and
multiplicity; that is harmless because every plan operator is a
per-row map/filter and the final :class:`ProjectOp` deduplicates.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.operators import (
    BindOp,
    IntervalJoinOp,
    SeedOp,
    SharedOp,
    StepOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
    UnnestOp,
)
from repro.calculus.formulas import Pred
from repro.calculus.terms import Const, Name, Variable
from repro.errors import SQLUnsupportedError


class _Unsupported(Exception):
    """Internal: this operator (or a descendant) has no SQL image."""


# ---------------------------------------------------------------------------
# Column descriptors
# ---------------------------------------------------------------------------


class ValCol:
    """A model value: ``(root, pre)`` node reference + hydration mode."""

    __slots__ = ("root", "pre", "mode", "modes")

    def __init__(self, root: str, pre: str, mode: str,
                 modes: frozenset) -> None:
        self.root = root
        self.pre = pre
        self.mode = mode
        self.modes = modes


class PathCol:
    """A relative path: ``paths[node].steps[depth:]`` under ``root``."""

    __slots__ = ("root", "depth", "node")

    def __init__(self, root: str, depth: str, node: str) -> None:
        self.root = root
        self.depth = depth
        self.node = node


class IntCol:
    """A plain integer column (e.g. an unnest position)."""

    __slots__ = ("col",)

    def __init__(self, col: str) -> None:
        self.col = col


class StrCol:
    """A plain string column (e.g. a matched attribute name)."""

    __slots__ = ("col",)

    def __init__(self, col: str) -> None:
        self.col = col


class ConstCol:
    """A compile-time constant; hydrates without touching the row."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value


class Fragment:
    """One emitted CTE plus the variable -> descriptor environment."""

    __slots__ = ("name", "columns")

    def __init__(self, name: str, columns: dict) -> None:
        self.name = name
        self.columns = columns


class SQLProgram:
    """One executable statement: SQL + params + hydration environment."""

    __slots__ = ("sql", "params", "columns", "roots", "has_scans",
                 "prefilters")

    def __init__(self, sql: str, params: dict, columns: dict,
                 roots: frozenset, has_scans: bool,
                 prefilters: int) -> None:
        self.sql = sql
        self.params = params
        self.columns = columns
        self.roots = roots
        self.has_scans = has_scans
        self.prefilters = prefilters


_N = frozenset(("n",))
_H = frozenset(("h",))
_NH = frozenset(("n", "h"))


class Emitter:
    """Bottom-up plan -> SQL compilation state (one plan's worth).

    ``emit`` either returns a :class:`Fragment` or raises
    :class:`_Unsupported`; the backend's hybridizer catches the latter
    and keeps the operator in Python.  Emission is memoized by operator
    identity so shared (DAG) subplans compile to one CTE referenced by
    every consumer.
    """

    def __init__(self, root_names: Any = ()) -> None:
        self.root_names = set(root_names)
        self.ctes: list[tuple[str, str]] = []
        self.params: dict[str, object] = {}
        self.roots_used: set[str] = set()
        self.has_scans = False
        self.prefilters = 0
        self._counter = 0
        self._memo: dict[int, Fragment | None] = {}

    # -- naming ----------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _param(self, value: object) -> str:
        name = self._fresh("p")
        self.params[name] = value
        return f":{name}"

    def _cte(self, sql: str) -> str:
        name = self._fresh("q")
        self.ctes.append((name, sql))
        return name

    def _val(self) -> tuple[str, str, str]:
        base = self._fresh("v")
        return f"{base}r", f"{base}p", f"{base}m"

    # -- rendering -------------------------------------------------------------

    def render(self, fragment: Fragment) -> str:
        """The full statement for one fragment.  Every CTE emitted so
        far rides along in the prelude; SQLite evaluates CTEs on
        reference only, so unreferenced ones cost nothing."""
        with_clause = ",\n".join(f"{name} AS (\n{sql}\n)"
                                 for name, sql in self.ctes)
        return f"WITH {with_clause}\nSELECT * FROM {fragment.name}"

    def program(self, fragment: Fragment) -> SQLProgram:
        return SQLProgram(self.render(fragment), self.params,
                          dict(fragment.columns),
                          frozenset(self.roots_used), self.has_scans,
                          self.prefilters)

    # -- dispatch --------------------------------------------------------------

    def emit(self, op: Any) -> Fragment:
        key = id(op)
        if key in self._memo:
            cached = self._memo[key]
            if cached is None:
                raise _Unsupported(type(op).__name__)
            return cached
        try:
            fragment = self._emit(op)
        except _Unsupported:
            self._memo[key] = None
            raise
        self._memo[key] = fragment
        return fragment

    def _emit(self, op: Any) -> Fragment:
        if isinstance(op, SeedOp):
            return self._seed()
        if isinstance(op, BindOp):
            return self._bind(op)
        if isinstance(op, UnnestOp):
            return self._unnest(op)
        if isinstance(op, StructuralAttrScanOp):
            return self._attr_scan(op)
        if isinstance(op, IntervalJoinOp):
            raise _Unsupported("IntervalJoinOp emits via interval_join")
        if isinstance(op, StructuralScanOp):
            return self._scan(op)
        if isinstance(op, StepOp):
            return self._step(op)
        if isinstance(op, UnionOp):
            return self._union(op)
        if isinstance(op, SharedOp):
            # sharing relationally is free: the child's CTE is simply
            # referenced by every consumer of this fragment
            return self.emit(op.child)
        raise _Unsupported(type(op).__name__)

    # -- operators -------------------------------------------------------------

    def _seed(self) -> Fragment:
        name = self._cte("SELECT 0 AS seed0")
        return Fragment(name, {})

    def _bind(self, op: BindOp) -> Fragment:
        child = self.emit(op.child)
        term = op.term
        bound = op.variable in child.columns
        if isinstance(term, Variable) and term in child.columns \
                and not bound:
            columns = dict(child.columns)
            columns[op.variable] = child.columns[term]
            return Fragment(child.name, columns)
        if isinstance(term, Const) and not bound:
            columns = dict(child.columns)
            columns[op.variable] = ConstCol(term.value)
            return Fragment(child.name, columns)
        if isinstance(term, Name) and not bound:
            r, p, m = self._val()
            root = self._param(term.name)
            sql = (f"SELECT c.*, n.root AS {r}, n.pre AS {p}, "
                   f"'n' AS {m}\n"
                   f"FROM {child.name} AS c\n"
                   f"JOIN node AS n ON n.root = {root} AND n.pre = 0")
            self.roots_used.add(term.name)
            columns = dict(child.columns)
            columns[op.variable] = ValCol(r, p, m, _N)
            return Fragment(self._cte(sql), columns)
        raise _Unsupported("BindOp term outside the relational subset")

    # A mode column is a CASE only out of positional steps into
    # containers of unknown kind; everywhere else it is a literal.

    def _source(self, fragment: Fragment, variable: Any) -> ValCol:
        desc = fragment.columns.get(variable)
        if not isinstance(desc, ValCol):
            raise _Unsupported("source variable is not a node value")
        return desc

    def _name_source(self, fragment: Fragment,
                     name: str) -> tuple[Fragment, ValCol]:
        """A hidden source descriptor for a persistent-root term: the
        join against the root's node 0 drops rows exactly when the
        root does not exist (``eval_term`` raises and the row drops)."""
        r, p, m = self._val()
        root = self._param(name)
        sql = (f"SELECT c.*, n.root AS {r}, n.pre AS {p}, 'n' AS {m}\n"
               f"FROM {fragment.name} AS c\n"
               f"JOIN node AS n ON n.root = {root} AND n.pre = 0")
        self.roots_used.add(name)
        return (Fragment(self._cte(sql), dict(fragment.columns)),
                ValCol(r, p, m, _N))

    def _union_arms(self, arms: list[str], columns: dict) -> Fragment:
        if not arms:
            raise _Unsupported("no emittable arms")
        return Fragment(self._cte("\nUNION ALL\n".join(arms)), columns)

    def _unnest(self, op: UnnestOp) -> Fragment:
        child = self.emit(op.child)
        if op.element_var in child.columns:
            raise _Unsupported("unnest element already bound")
        if isinstance(op.collection_term, Variable):
            src = self._source(child, op.collection_term)
        elif isinstance(op.collection_term, Name):
            child, src = self._name_source(child,
                                           op.collection_term.name)
        else:
            raise _Unsupported("unnest over a non-variable term")
        base = self._fresh("v")
        ep, em = f"{base}p", f"{base}m"
        index_cond = ""
        ei = None
        produce_index = False
        if op.index_var is not None:
            bound_desc = child.columns.get(op.index_var)
            if bound_desc is None:
                produce_index = True
                ei = self._fresh("i")
            elif isinstance(bound_desc, IntCol):
                index_cond = f" AND {{pos}} = c.{bound_desc.col}"
            elif isinstance(bound_desc, ConstCol):
                value = bound_desc.value
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    index_cond = f" AND {{pos}} = {self._param(value)}"
                else:
                    # Python: row[index] != position for every position
                    index_cond = " AND 0 = 1"
            else:
                raise _Unsupported("bound unnest index of opaque type")

        def arm(joins: str, where: str, elem: str, mode: str,
                pos: str) -> str:
            extras = f"{elem} AS {ep}, {mode} AS {em}"
            if produce_index:
                extras += f", {pos} AS {ei}"
            cond = where + index_cond.format(pos=pos)
            return (f"SELECT c.*, {extras}\n"
                    f"FROM {child.name} AS c\n{joins}\nWHERE {cond}")

        sj = (f"JOIN node AS s ON s.root = c.{src.root} "
              f"AND s.pre = c.{src.pre}")
        arms: list[str] = []
        modes: frozenset = frozenset()
        if "n" in src.modes:
            if op.mode == "collection":
                arms.append(arm(
                    sj + "\nJOIN node AS e ON e.root = s.root "
                         "AND e.parent = s.pre",
                    f"c.{src.mode} = 'n' AND s.kind IN ('list', 'set')",
                    "e.pre", "'n'", "e.position"))
                modes |= _N
            elif op.mode == "set":
                arms.append(arm(
                    sj + "\nJOIN node AS b ON b.root = s.root "
                         "AND b.pre = s.deref_base"
                         "\nJOIN node AS e ON e.root = b.root "
                         "AND e.parent = b.pre",
                    f"c.{src.mode} = 'n' AND b.kind = 'set'",
                    "e.pre", "'n'", "e.position"))
                modes |= _N
            else:  # positions
                arms.append(arm(
                    sj + "\nJOIN node AS t ON t.root = s.root "
                         "AND t.pre = s.cont"
                         "\nJOIN node AS e ON e.root = t.root "
                         "AND e.parent = t.pre",
                    f"c.{src.mode} = 'n' "
                    "AND t.kind IN ('list', 'tuple')",
                    "e.pre",
                    "CASE WHEN t.kind = 'tuple' THEN 'h' ELSE 'n' END",
                    "e.position"))
                modes |= _NH
        if "h" in src.modes and op.mode == "positions":
            tj = (f"JOIN node AS t ON t.root = c.{src.root} "
                  f"AND t.pre = c.{src.pre}")
            # wrapper over a tuple node: positions run over the
            # payload's fields, each again a wrapper
            arms.append(arm(
                tj + "\nJOIN node AS e ON e.root = t.root "
                     "AND e.parent = t.pre",
                f"c.{src.mode} = 'h' AND t.kind = 'tuple'",
                "e.pre", "'h'", "e.position"))
            # wrapper over anything else: the het view of the wrapper
            # itself — a single element, the wrapper, at position 0
            arms.append(arm(
                tj, f"c.{src.mode} = 'h' AND t.kind != 'tuple'",
                f"c.{src.pre}", "'h'", "0"))
            modes |= _H
        columns = dict(child.columns)
        columns[op.element_var] = ValCol(src.root, ep, em,
                                         modes or _N)
        if produce_index:
            columns[op.index_var] = IntCol(ei)
        return self._union_arms(arms, columns)

    def _step(self, op: StepOp) -> Fragment:
        child = self.emit(op.child)
        if op.out_var in child.columns:
            raise _Unsupported("step output already bound")
        src = self._source(child, op.source_var)
        if op.kind in ("attr", "attr_by_var"):
            return self._step_attr(op, child, src)
        if op.kind in ("index", "index_by_var"):
            return self._step_index(op, child, src)
        if op.kind == "deref":
            return self._step_deref(op, child, src)
        raise _Unsupported(f"step kind {op.kind!r}")

    def _attr_expr(self, op: Any, child: Fragment) -> str:
        """The SQL expression for the attribute name argument, or
        ``None`` when the argument can never be a string (making the
        step drop every row)."""
        if op.kind in ("attr",):
            if not isinstance(op.argument, str):  # pragma: no cover
                raise _Unsupported("non-string attr argument")
            return self._param(op.argument)
        desc = child.columns.get(op.argument)
        if isinstance(desc, StrCol):
            return f"c.{desc.col}"
        if isinstance(desc, ConstCol):
            if isinstance(desc.value, str):
                return self._param(desc.value)
            return None
        raise _Unsupported("attr-by-var argument of opaque type")

    def _step_attr(self, op: StepOp, child: Fragment,
                   src: ValCol) -> Fragment:
        attr = self._attr_expr(op, child)
        _, o_p, o_m = self._val()
        if attr is None:
            # argument is never a string: every row drops
            sql = (f"SELECT c.*, 0 AS {o_p}, 'n' AS {o_m} "
                   f"FROM {child.name} AS c WHERE 0 = 1")
            columns = dict(child.columns)
            columns[op.out_var] = ValCol(src.root, o_p, o_m, _N)
            return Fragment(self._cte(sql), columns)

        def arm(joins: str, where: str, out: str) -> str:
            return (f"SELECT c.*, {out} AS {o_p}, 'n' AS {o_m}\n"
                    f"FROM {child.name} AS c\n{joins}\nWHERE {where}")

        arms: list[str] = []
        if "n" in src.modes:
            arms.append(arm(
                f"JOIN node AS s ON s.root = c.{src.root} "
                f"AND s.pre = c.{src.pre}\n"
                f"JOIN sel AS e ON e.root = s.root "
                f"AND e.base = s.deref_base AND e.name = {attr}",
                f"c.{src.mode} = 'n'", "e.target"))
        if "h" in src.modes:
            tj = (f"JOIN node AS t ON t.root = c.{src.root} "
                  f"AND t.pre = c.{src.pre}")
            # the wrapper's own (single) field matches: value = node
            arms.append(arm(
                tj, f"c.{src.mode} = 'h' AND t.name = {attr}",
                f"c.{src.pre}"))
            # unshadowed payload field of a tuple-valued wrapper
            arms.append(arm(
                tj + "\nJOIN node AS e ON e.root = t.root "
                     f"AND e.parent = t.pre AND e.name = {attr}",
                f"c.{src.mode} = 'h' AND t.kind = 'tuple' "
                f"AND t.name != {attr}",
                "e.pre"))
        columns = dict(child.columns)
        columns[op.out_var] = ValCol(src.root, o_p, o_m, _N)
        return self._union_arms(arms, columns)

    def _step_index(self, op: StepOp, child: Fragment,
                    src: ValCol) -> Fragment:
        if op.kind == "index":
            argument = op.argument
        else:
            desc = child.columns.get(op.argument)
            if isinstance(desc, IntCol):
                argument = desc
            elif isinstance(desc, ConstCol):
                argument = desc.value
            else:
                raise _Unsupported("index-by-var argument of opaque "
                                   "type")
        if isinstance(argument, IntCol):
            index = f"c.{argument.col}"
        elif isinstance(argument, int) and not isinstance(argument,
                                                          bool):
            index = self._param(argument)
        elif isinstance(argument, bool):
            index = self._param(int(argument))
        else:
            index = None  # Python: not isinstance(int) -> every row drops
        _, o_p, o_m = self._val()
        columns = dict(child.columns)
        if index is None:
            sql = (f"SELECT c.*, 0 AS {o_p}, 'n' AS {o_m} "
                   f"FROM {child.name} AS c WHERE 0 = 1")
            columns[op.out_var] = ValCol(src.root, o_p, o_m, _N)
            return Fragment(self._cte(sql), columns)

        def arm(joins: str, where: str, out: str, mode: str) -> str:
            return (f"SELECT c.*, {out} AS {o_p}, {mode} AS {o_m}\n"
                    f"FROM {child.name} AS c\n{joins}\nWHERE {where}")

        arms: list[str] = []
        modes: frozenset = frozenset()
        if "n" in src.modes:
            arms.append(arm(
                f"JOIN node AS s ON s.root = c.{src.root} "
                f"AND s.pre = c.{src.pre}\n"
                "JOIN node AS t ON t.root = s.root AND t.pre = s.cont\n"
                "JOIN node AS e ON e.root = t.root "
                f"AND e.parent = t.pre AND e.position = {index}",
                f"c.{src.mode} = 'n' AND t.kind IN ('list', 'tuple')",
                "e.pre",
                "CASE WHEN t.kind = 'tuple' THEN 'h' ELSE 'n' END"))
            modes |= _NH
        if "h" in src.modes:
            tj = (f"JOIN node AS t ON t.root = c.{src.root} "
                  f"AND t.pre = c.{src.pre}")
            arms.append(arm(
                tj + "\nJOIN node AS e ON e.root = t.root "
                     f"AND e.parent = t.pre AND e.position = {index}",
                f"c.{src.mode} = 'h' AND t.kind = 'tuple'",
                "e.pre", "'h'"))
            arms.append(arm(
                tj,
                f"c.{src.mode} = 'h' AND t.kind != 'tuple' "
                f"AND {index} = 0",
                f"c.{src.pre}", "'h'"))
            modes |= _H
        columns[op.out_var] = ValCol(src.root, o_p, o_m, modes or _N)
        return self._union_arms(arms, columns)

    def _step_deref(self, op: StepOp, child: Fragment,
                    src: ValCol) -> Fragment:
        _, o_p, o_m = self._val()
        arms: list[str] = []
        if "n" in src.modes:
            arms.append(
                f"SELECT c.*, e.pre AS {o_p}, 'n' AS {o_m}\n"
                f"FROM {child.name} AS c\n"
                f"JOIN node AS s ON s.root = c.{src.root} "
                f"AND s.pre = c.{src.pre}\n"
                "JOIN node AS e ON e.root = s.root "
                "AND e.parent = s.pre AND e.step = 'deref'\n"
                f"WHERE c.{src.mode} = 'n' AND s.kind = 'oid'")
        if not arms:
            # a wrapper is never an oid: every row drops
            arms.append(f"SELECT c.*, 0 AS {o_p}, 'n' AS {o_m} "
                        f"FROM {child.name} AS c WHERE 0 = 1")
        columns = dict(child.columns)
        columns[op.out_var] = ValCol(src.root, o_p, o_m, _N)
        return self._union_arms(arms, columns)

    # -- structural operators --------------------------------------------------

    def _scan_arms(self, child: Fragment, src: ValCol,
                   pd: str, pn: str, o_p: str, o_m: str,
                   extra: str = "", extra_cond: str = "",
                   wrapper_cond: str = "") -> list[str]:
        """The three structural-scan arms: subtree range over an
        ordinary node; the wrapper itself (relative path ε); the
        wrapper's payload subtree (relative paths start at the
        wrapper's field step, i.e. depth ``level - 1``).

        ``extra`` appends output columns, ``extra_cond`` a condition on
        the scanned node ``d`` (the interval-join vkey prefilter) and
        ``wrapper_cond`` its counterpart for the wrapper-ε arm."""
        arms = []
        if "n" in src.modes:
            arms.append(
                f"SELECT c.*, s.level AS {pd}, d.pre AS {pn}, "
                f"d.pre AS {o_p}, 'n' AS {o_m}{extra}\n"
                f"FROM {child.name} AS c\n"
                f"JOIN node AS s ON s.root = c.{src.root} "
                f"AND s.pre = c.{src.pre}\n"
                "JOIN node AS d ON d.root = s.root "
                "AND d.pre >= s.pre AND d.pre < s.end_pre\n"
                f"WHERE c.{src.mode} = 'n'{extra_cond}")
        if "h" in src.modes:
            tj = (f"JOIN node AS t ON t.root = c.{src.root} "
                  f"AND t.pre = c.{src.pre}")
            arms.append(
                f"SELECT c.*, t.level AS {pd}, t.pre AS {pn}, "
                f"c.{src.pre} AS {o_p}, 'h' AS {o_m}{extra}\n"
                f"FROM {child.name} AS c\n{tj}\n"
                f"WHERE c.{src.mode} = 'h'{wrapper_cond}")
            arms.append(
                f"SELECT c.*, t.level - 1 AS {pd}, d.pre AS {pn}, "
                f"d.pre AS {o_p}, 'n' AS {o_m}{extra}\n"
                f"FROM {child.name} AS c\n{tj}\n"
                "JOIN node AS d ON d.root = t.root "
                "AND d.pre >= t.pre AND d.pre < t.end_pre\n"
                f"WHERE c.{src.mode} = 'h'{extra_cond}")
        return arms

    def _scan(self, op: StructuralScanOp) -> Fragment:
        child = self.emit(op.child)
        if op.out_var in child.columns or op.path_var in child.columns:
            raise _Unsupported("scan output already bound")
        src = self._source(child, op.source_var)
        self.has_scans = True
        pd, pn = self._fresh("d"), self._fresh("n")
        _, o_p, o_m = self._val()
        arms = self._scan_arms(child, src, pd, pn, o_p, o_m)
        columns = dict(child.columns)
        columns[op.path_var] = PathCol(src.root, pd, pn)
        out_modes = _NH if "h" in src.modes else _N
        columns[op.out_var] = ValCol(src.root, o_p, o_m, out_modes)
        return self._union_arms(arms, columns)

    def interval_join(self, op: IntervalJoinOp) -> Fragment:
        """The scan arms constrained by a sound ``vkey`` prefilter.

        The caller (the hybridizer) re-applies ``op.recheck_atom`` as a
        Python selection on top — exactly the operator's documented
        fallback (scan + exact recheck), so the prefilter only has to
        never drop an equivalent pair: two values with non-NULL keys
        are equivalent only if the keys are equal, and a NULL on either
        side passes through to the recheck."""
        child = self.emit(op.child)
        if op.out_var in child.columns or op.path_var in child.columns:
            raise _Unsupported("join output already bound")
        src = self._source(child, op.source_var)
        probe = child.columns.get(op.probe_var)
        key = None
        if isinstance(probe, ValCol):
            key = (f"(SELECT p2.vkey FROM node AS p2 "
                   f"WHERE p2.root = c.{probe.root} "
                   f"AND p2.pre = c.{probe.pre} "
                   f"AND c.{probe.mode} = 'n')")
        elif isinstance(probe, ConstCol):
            from repro.sqlbackend.shred import value_key
            probe_key = value_key(probe.value)
            key = "NULL" if probe_key is None \
                else self._param(probe_key)
        elif isinstance(probe, IntCol):
            key = f"'n:' || CAST(c.{probe.col} AS TEXT)"
        elif isinstance(probe, StrCol):
            key = f"'s:' || c.{probe.col}"
        elif isinstance(probe, PathCol):
            key = "NULL"  # a path never equals a node value
        else:
            raise _Unsupported("interval-join probe is unbound")
        self.has_scans = True
        pd, pn = self._fresh("d"), self._fresh("n")
        _, o_p, o_m = self._val()
        cond = (f" AND ({key} IS NULL OR d.vkey IS NULL "
                f"OR d.vkey = {key})")
        # the wrapper arm's value is a tuple: only a NULL probe key
        # (collection / wrapper / absent) can still match it exactly
        wrapper_cond = f" AND {key} IS NULL"
        arms = self._scan_arms(child, src, pd, pn, o_p, o_m,
                               extra_cond=cond,
                               wrapper_cond=wrapper_cond)
        columns = dict(child.columns)
        columns[op.path_var] = PathCol(src.root, pd, pn)
        out_modes = _NH if "h" in src.modes else _N
        columns[op.out_var] = ValCol(src.root, o_p, o_m, out_modes)
        return self._union_arms(arms, columns)

    def _attr_scan(self, op: StructuralAttrScanOp) -> Fragment:
        child = self.emit(op.child)
        for produced in (op.path_var, op.out_var, op.value_var,
                         op.attr_var):
            if produced is not None and produced in child.columns:
                raise _Unsupported("attr-scan output already bound")
        src = self._source(child, op.source_var)
        attr = None
        if op.attr is not None:
            attr = self._param(op.attr)
        self.has_scans = True
        pd, pn = self._fresh("d"), self._fresh("n")
        _, o_p, o_m = self._val()
        _, v_p, v_m = self._val()
        an = self._fresh("w") if op.attr_var is not None else None

        def arm(joins: str, where: str, depth: str,
                node: str, out: str, out_mode: str, value: str,
                name: str) -> str:
            extras = (f"{depth} AS {pd}, {node} AS {pn}, "
                      f"{out} AS {o_p}, {out_mode} AS {o_m}, "
                      f"{value} AS {v_p}, 'n' AS {v_m}")
            if an is not None:
                extras += f", {name} AS {an}"
            return (f"SELECT c.*, {extras}\n"
                    f"FROM {child.name} AS c\n{joins}\nWHERE {where}")

        sel_name = f" AND e.name = {attr}" if attr is not None else ""
        arms: list[str] = []
        if "n" in src.modes:
            arms.append(arm(
                f"JOIN node AS s ON s.root = c.{src.root} "
                f"AND s.pre = c.{src.pre}\n"
                "JOIN node AS h ON h.root = s.root "
                "AND h.pre >= s.pre AND h.pre < s.end_pre\n"
                "JOIN sel AS e ON e.root = h.root "
                f"AND e.base = h.deref_base{sel_name}",
                f"c.{src.mode} = 'n'",
                "s.level", "h.pre", "h.pre", "'n'", "e.target",
                "e.name"))
        if "h" in src.modes:
            tj = (f"JOIN node AS t ON t.root = c.{src.root} "
                  f"AND t.pre = c.{src.pre}")
            # the wrapper holder, its own field matching
            direct = (f" AND t.name = {attr}" if attr is not None
                      else "")
            arms.append(arm(
                tj, f"c.{src.mode} = 'h'{direct}",
                "t.level", "t.pre", f"c.{src.pre}", "'h'", "t.pre",
                "t.name"))
            # the wrapper holder, unshadowed payload fields
            if attr is not None:
                payload = (f"AND e.name = {attr}",
                           f" AND t.name != {attr}")
            else:
                payload = ("AND e.name != t.name", "")
            arms.append(arm(
                tj + "\nJOIN node AS e ON e.root = t.root "
                     f"AND e.parent = t.pre {payload[0]}",
                f"c.{src.mode} = 'h' AND t.kind = 'tuple'"
                f"{payload[1]}",
                "t.level", "t.pre", f"c.{src.pre}", "'h'", "e.pre",
                "e.name"))
            # holders inside the payload subtree
            arms.append(arm(
                tj + "\nJOIN node AS h ON h.root = t.root "
                     "AND h.pre >= t.pre AND h.pre < t.end_pre\n"
                     "JOIN sel AS e ON e.root = h.root "
                     f"AND e.base = h.deref_base{sel_name}",
                f"c.{src.mode} = 'h'",
                "t.level - 1", "h.pre", "h.pre", "'n'", "e.target",
                "e.name"))
        columns = dict(child.columns)
        columns[op.path_var] = PathCol(src.root, pd, pn)
        out_modes = _NH if "h" in src.modes else _N
        columns[op.out_var] = ValCol(src.root, o_p, o_m, out_modes)
        columns[op.value_var] = ValCol(src.root, v_p, v_m, _N)
        if op.attr_var is not None:
            columns[op.attr_var] = StrCol(an)
        return self._union_arms(arms, columns)

    # -- union -----------------------------------------------------------------

    def _union(self, op: UnionOp) -> Fragment:
        fragments = [self.emit(branch) for branch in op.branches]
        variables = set(fragments[0].columns)
        for fragment in fragments[1:]:
            if set(fragment.columns) != variables:
                raise _Unsupported("union branches bind different "
                                   "variables")
        columns: dict = {}
        selects: list[list[str]] = [[] for _ in fragments]

        def add(alias: str, exprs: list[str]) -> None:
            for select, expr in zip(selects, exprs):
                select.append(f"{expr} AS {alias}")

        for variable in variables:
            descs = [f.columns[variable] for f in fragments]
            first = descs[0]
            if all(isinstance(d, ConstCol) for d in descs):
                values = [d.value for d in descs]
                if all(type(v) is type(values[0]) and v == values[0]
                       for v in values[1:]):
                    columns[variable] = ConstCol(values[0])
                    continue
                if all(isinstance(v, int) for v in values):
                    col = self._fresh("i")
                    add(col, [self._param(int(v)) for v in values])
                    columns[variable] = IntCol(col)
                    continue
                if all(isinstance(v, str) for v in values):
                    col = self._fresh("w")
                    add(col, [self._param(v) for v in values])
                    columns[variable] = StrCol(col)
                    continue
                raise _Unsupported("union of unequal constants")
            if isinstance(first, ValCol):
                if not all(isinstance(d, ValCol) for d in descs):
                    raise _Unsupported("union mixes descriptor kinds")
                r, p, m = self._val()
                add(r, [f"b.{d.root}" for d in descs])
                add(p, [f"b.{d.pre}" for d in descs])
                add(m, [f"b.{d.mode}" for d in descs])
                modes = frozenset().union(*(d.modes for d in descs))
                columns[variable] = ValCol(r, p, m, modes)
                continue
            if isinstance(first, PathCol):
                if not all(isinstance(d, PathCol) for d in descs):
                    raise _Unsupported("union mixes descriptor kinds")
                r = self._fresh("v") + "r"
                pd, pn = self._fresh("d"), self._fresh("n")
                add(r, [f"b.{d.root}" for d in descs])
                add(pd, [f"b.{d.depth}" for d in descs])
                add(pn, [f"b.{d.node}" for d in descs])
                columns[variable] = PathCol(r, pd, pn)
                continue
            if isinstance(first, IntCol):
                if not all(isinstance(d, IntCol) for d in descs):
                    raise _Unsupported("union mixes descriptor kinds")
                col = self._fresh("i")
                add(col, [f"b.{d.col}" for d in descs])
                columns[variable] = IntCol(col)
                continue
            if isinstance(first, StrCol):
                if not all(isinstance(d, StrCol) for d in descs):
                    raise _Unsupported("union mixes descriptor kinds")
                col = self._fresh("w")
                add(col, [f"b.{d.col}" for d in descs])
                columns[variable] = StrCol(col)
                continue
            raise _Unsupported("union mixes descriptor kinds")
        arms = []
        for fragment, select in zip(fragments, selects):
            exprs = ", ".join(select) if select else "0 AS seed0"
            arms.append(f"SELECT {exprs} FROM {fragment.name} AS b")
        return self._union_arms(arms, columns)

    # -- the contains prefilter ------------------------------------------------

    def contains_prefilter(self, fragment: Fragment,
                           atom: Any) -> Fragment | None:
        """A sound content-table probe for ``Select contains(X, p)``.

        Returns a narrowed fragment, or ``None`` when the atom is not
        of that shape / has no required literal words.  Sound to apply
        *below* the exact Python recheck: a row is dropped only when
        it binds ``X`` to a *string atom* (a ``content`` row exists
        for the node) missing a required literal word as a substring.
        Non-string subjects pass through untouched — the calculus
        ``contains`` routes them through the ``text()`` inverse
        mapping (:func:`repro.mapping.text_inverse.text_of`), whose
        collected text is not this node's own content row.  Matching
        is exact and case-sensitive — which is why ``instr``, not the
        case-folding ``LIKE``, probes."""
        if not isinstance(atom, Pred) or atom.predicate != "contains":
            return None
        if len(atom.arguments) != 2:
            return None
        subject, pattern_term = atom.arguments
        if not isinstance(subject, Variable):
            return None
        desc = fragment.columns.get(subject)
        if not isinstance(desc, ValCol):
            return None
        if not isinstance(pattern_term, Const):
            return None
        try:
            from repro.text.predicates import _as_expr
            words = _required_words(_as_expr(pattern_term.value))
        except Exception:
            return None
        if not words:
            return None
        probes = " AND ".join(
            "EXISTS (SELECT 1 FROM content AS t "
            f"WHERE t.root = c.{desc.root} AND t.pre = c.{desc.pre} "
            f"AND instr(t.value, {self._param(word)}) > 0)"
            for word in sorted(words))
        sql = (f"SELECT c.* FROM {fragment.name} AS c\n"
               f"WHERE c.{desc.mode} != 'n'\n"
               f"   OR NOT EXISTS (SELECT 1 FROM content AS t "
               f"WHERE t.root = c.{desc.root} AND t.pre = c.{desc.pre})\n"
               f"   OR ({probes})")
        self.prefilters += 1
        return Fragment(self._cte(sql), dict(fragment.columns))


def _required_words(expr: Any) -> set[str]:
    """Literal words every satisfying text must contain.  Disjunction
    and negation contribute nothing (their branches are optional)."""
    from repro.text.patterns import AndExpr, Pattern
    if isinstance(expr, Pattern):
        return set(expr.literal_words())
    if isinstance(expr, AndExpr):
        return _required_words(expr.left) | _required_words(expr.right)
    return set()


def emit_program(plan: Any, root_names: Any = ()) -> SQLProgram:
    """Compile one whole operator (sub)tree to a single statement.

    Raises :class:`~repro.errors.SQLUnsupportedError` when any
    operator falls outside the relational subset — callers that want
    partial emission use the backend's hybridizer instead."""
    emitter = Emitter(root_names)
    try:
        fragment = emitter.emit(plan)
    except _Unsupported as exc:
        raise SQLUnsupportedError(
            f"plan outside the relational subset: {exc}") from exc
    return emitter.program(fragment)
