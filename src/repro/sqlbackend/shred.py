"""Shred persistence roots into the relational accel tables.

One :class:`Shred` folds the *same*
:func:`~repro.paths.enumeration.walk_events` stream the structural
index consumes — one source of truth, so a SQL range scan enumerates
exactly what a live walk (or an indexed scan) would.  The fold mirrors
:func:`repro.structindex.index._build_block` bit for bit:

* every ENTER event becomes one ``node`` row with its pre rank, post
  rank, level, parent and subtree end (``end_pre``);
* BLOCKED events mark every open node strictly below the crossing oid
  *incomplete* — a fresh walk started inside those subtrees would
  cross the dereference this walk suppressed, so range scans starting
  there would lie;
* a node-budget overflow yields an empty, truncated root.

A root is **navigable** when every node is complete and no implicit
dereference chain overflows the evaluator's 16-step cap; the backend
refuses (and falls back) otherwise, instead of approximating.

Freshness is epoch-gated off the plan cache: :meth:`Shred.refresh`
rebuilds everything when the store epoch moved, exactly like
:meth:`repro.structindex.StructuralIndex.refresh` — the same bump
that invalidates cached plans marks the shred stale.

Python-side hydration state (``values``/``paths`` arrays per root)
turns result rows back into model values without re-walking: the
arrays hold the *actual* objects of the instance, so hydrated rows
are indistinguishable from interpreter bindings.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.oodb.values import (
    ATOM_PYTYPES,
    ListValue,
    Nil,
    Oid,
    SetValue,
    TupleValue,
)
from repro.errors import EvaluationError
from repro.paths.enumeration import (
    BLOCKED,
    ENTER,
    RESTRICTED,
    walk_events,
)
from repro.paths.steps import AttrStep, DerefStep, ElemStep, IndexStep, Path
from repro.sqlbackend.dialect import Dialect, SQLiteDialect

#: Same ceiling as the structural index: a root larger than this
#: shreds to an (unusable) truncated stub instead of a memory blowup.
DEFAULT_MAX_NODES = 1_000_000

#: The evaluator raises after this many implicit dereferences; the
#: shredder marks roots whose chains exceed it non-navigable.
DEREF_CAP = 16


def value_key(value: object) -> str | None:
    """The equality key stored in ``node.vkey``.

    Two *atomic* values (or oids, or nil) are :func:`equivalent` iff
    Python ``==`` holds, and ``==`` across int/bool/float follows the
    numeric tower — so numbers canonicalize to one key.  Collections
    get ``None``: SQL never decides their equality, the emitter
    enumerates and rechecks exactly.
    """
    if isinstance(value, Oid):
        return f"o:{value.number}:{value.class_name}"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if value != value:          # NaN: equal to nothing, not even
            return None             # itself — never joinable by key
        if value in (float("inf"), float("-inf")):
            return f"n:{value!r}"
        if value.is_integer():
            return f"n:{int(value)}"
        return f"n:{value!r}"
    if isinstance(value, int):
        return f"n:{value}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, Nil):
        return "nil"
    return None


def _kind_of(value: object) -> str:
    if isinstance(value, Oid):
        return "oid"
    if isinstance(value, TupleValue):
        return "tuple"
    if isinstance(value, ListValue):
        return "list"
    if isinstance(value, SetValue):
        return "set"
    if isinstance(value, Nil):
        return "nil"
    return "atom"


class ShreddedRoot:
    """One persistence root's shred: hydration arrays + usability."""

    __slots__ = ("name", "origin", "values", "paths", "names", "size",
                 "navigable", "reason")

    def __init__(self, name: str, origin: object) -> None:
        self.name = name
        self.origin = origin
        #: pre -> the reached model value (the actual object).
        self.values: list[object] = []
        #: pre -> absolute :class:`Path` from the root.
        self.paths: list[Path] = []
        #: pre -> the attribute name when the node was reached through
        #: an :class:`AttrStep` (hetero-wrapper hydration), else None.
        self.names: list[str | None] = []
        self.size = 0
        self.navigable = True
        self.reason: str | None = None

    def block(self, why: str) -> None:
        self.navigable = False
        if self.reason is None:
            self.reason = why

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ShreddedRoot({self.name!r}, size={self.size}, "
                f"navigable={self.navigable})")


class Shred:
    """The relational image of every persistence root.

    ``epoch_source`` is any object with an ``epoch`` attribute (the
    store's plan cache in practice); ``None`` disables staleness
    tracking and every :meth:`refresh` rebuilds — correct, just slow,
    for cacheless engines.
    """

    def __init__(self, instance: Any, epoch_source: Any = None,
                 dialect: Dialect | None = None,
                 metrics: Any = None,
                 max_nodes: int | None = DEFAULT_MAX_NODES) -> None:
        self.instance = instance
        self.epoch_source = epoch_source
        self.dialect = dialect if dialect is not None else SQLiteDialect()
        self.metrics = metrics
        self.max_nodes = max_nodes
        self.roots: dict[str, ShreddedRoot] = {}
        self._lock = threading.RLock()
        self._connection: Any = None
        self._built = False
        self._synced_epoch: int | None = None

    # -- freshness ------------------------------------------------------------

    @property
    def epoch(self) -> int | None:
        source = self.epoch_source
        return None if source is None else int(source.epoch)

    def stale(self) -> bool:
        if not self._built:
            return True
        if self.epoch_source is None:
            return True
        return self.epoch != self._synced_epoch

    def refresh(self) -> int:
        """Bring the shred up to date; returns roots (re)shredded.
        Cheap when clean (single epoch comparison, no lock)."""
        if not self.stale():
            return 0
        with self._lock:
            if not self.stale():
                return 0
            return self._rebuild()

    def connection(self) -> Any:
        if self._connection is None:
            with self._lock:
                if self._connection is None:
                    connection = self.dialect.connect()
                    self.dialect.create_schema(connection)
                    self._connection = connection
        return self._connection

    def execute(self, sql: str, params: dict | tuple = ()
                ) -> tuple[list[str], list[tuple]]:
        """Run one statement; returns (column names, all rows).

        Fetching eagerly under the lock keeps one connection safe
        across server threads; hydration happens outside."""
        with self._lock:
            cursor = self.connection().execute(sql, params)
            names = [entry[0] for entry in cursor.description or ()]
            return names, cursor.fetchall()

    # -- the fold -------------------------------------------------------------

    def _rebuild(self) -> int:
        connection = self.connection()
        self.dialect.reset(connection)
        self.roots = {}
        count = 0
        for name in self.instance.root_names:
            if not self.instance.has_root(name):  # pragma: no cover
                continue
            origin = self.instance.root(name)
            self.roots[name] = self._shred_root(
                connection, name, origin)
            count += 1
        self._close_derefs(connection)
        connection.commit()
        self._built = True
        self._synced_epoch = self.epoch
        if self.metrics is not None:
            self.metrics.inc("sql.shreds")
            self.metrics.inc("sql.shred_nodes",
                             sum(r.size for r in self.roots.values()))
        return count

    def _shred_root(self, connection: Any, name: str,
                    origin: object) -> ShreddedRoot:
        root = ShreddedRoot(name, origin)
        values = root.values
        paths = root.paths
        names = root.names
        posts: list[int] = []
        levels: list[int] = []
        parents: list[int] = []
        ends: list[int] = []
        complete: list[bool] = []
        kinds: list[str] = []
        steps: list[str] = []
        positions: list[int] = []
        child_counts: list[int] = []
        open_nodes: list[int] = []
        crossings: dict[str, int] = {}
        restore: dict[int, tuple] = {}
        post_counter = 0
        try:
            for kind, path, value, level in walk_events(
                    origin, self.instance, RESTRICTED, self.max_nodes):
                if kind is ENTER:
                    pre = len(values)
                    parent = open_nodes[-1] if open_nodes else -1
                    if parent >= 0 and isinstance(values[parent], Oid):
                        crossed = values[parent].class_name
                        restore[pre] = (crossed,
                                        crossings.get(crossed))
                        crossings[crossed] = parent
                    step, step_name = _step_of(path)
                    if parent >= 0:
                        position = child_counts[parent]
                        child_counts[parent] += 1
                    else:
                        position = 0
                    values.append(value)
                    paths.append(path)
                    names.append(step_name)
                    levels.append(level)
                    parents.append(parent)
                    posts.append(-1)
                    ends.append(-1)
                    complete.append(True)
                    kinds.append(_kind_of(value))
                    steps.append(step)
                    positions.append(position)
                    child_counts.append(0)
                    open_nodes.append(pre)
                elif kind is BLOCKED:
                    crossing = crossings.get(value.class_name, -1)
                    for open_pre in reversed(open_nodes):
                        if open_pre == crossing:
                            break
                        complete[open_pre] = False
                else:  # LEAVE
                    pre = open_nodes.pop()
                    posts[pre] = post_counter
                    post_counter += 1
                    ends[pre] = len(values)
                    undo = restore.pop(pre, None)
                    if undo is not None:
                        crossed, previous = undo
                        if previous is None:
                            del crossings[crossed]
                        else:
                            crossings[crossed] = previous
        except EvaluationError:
            stub = ShreddedRoot(name, origin)
            stub.block("node budget exceeded")
            return stub
        root.size = len(values)
        if not all(complete):
            root.block("suppressed dereference (incomplete subtree)")
        self._insert_root(connection, name, root, posts, levels,
                          parents, ends, kinds, steps, positions)
        return root

    def _insert_root(self, connection: Any, name: str,
                     root: ShreddedRoot, posts: list[int],
                     levels: list[int], parents: list[int],
                     ends: list[int], kinds: list[str],
                     steps: list[str], positions: list[int]) -> None:
        values = root.values
        names = root.names
        node_rows = []
        sel_rows = []
        content_rows = []
        attr_rows = []
        for pre, value in enumerate(values):
            kind = kinds[pre]
            node_rows.append((
                name, pre, posts[pre], levels[pre], parents[pre],
                ends[pre], kind,
                value.class_name if isinstance(value, Oid) else None,
                steps[pre], names[pre], positions[pre],
                value_key(value),
                None if kind == "oid" else pre,
            ))
            if kind == "atom" and isinstance(value, str):
                content_rows.append((name, pre, value))
            if steps[pre] == "attr":
                rendered = (str(value)
                            if isinstance(value, ATOM_PYTYPES)
                            else None)
                attr_rows.append((name, pre, names[pre], rendered))
            if kind == "tuple":
                children = _children(pre, ends)
                for child in children:
                    sel_rows.append((name, pre, names[child], child))
                if len(children) == 1:
                    marker = names[children[0]]
                    payload = children[0]
                    if kinds[payload] == "tuple":
                        for grand in _children(payload, ends):
                            if names[grand] != marker:
                                sel_rows.append(
                                    (name, pre, names[grand], grand))
        connection.executemany(
            "INSERT INTO node (root, pre, post, level, parent, "
            "end_pre, kind, class, step, name, position, vkey, "
            "deref_base) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            node_rows)
        connection.executemany(
            "INSERT INTO sel (root, base, name, target) "
            "VALUES (?, ?, ?, ?)", sel_rows)
        connection.executemany(
            "INSERT INTO content (root, pre, value) VALUES (?, ?, ?)",
            content_rows)
        connection.executemany(
            "INSERT INTO attr (root, pre, name, value) "
            "VALUES (?, ?, ?, ?)", attr_rows)

    def _close_derefs(self, connection: Any) -> None:
        """Resolve ``deref_base`` for oid nodes with the dialect's
        recursive chase, then derive the ``cont`` swap column."""
        updates = []
        for row in connection.execute(self.dialect.deref_chase_sql()):
            root_name, origin, cur, depth, kind = row
            if kind == "oid" or depth > DEREF_CAP:
                shredded = self.roots.get(root_name)
                if shredded is not None:
                    shredded.block("dereference chain over the "
                                   f"{DEREF_CAP}-step cap")
                continue
            updates.append((cur, root_name, origin))
        connection.executemany(
            "UPDATE node SET deref_base = ? WHERE root = ? AND pre = ?",
            updates)
        connection.execute("UPDATE node SET cont = deref_base")
        connection.execute(self.dialect.cont_swap_sql())

    # -- lookups --------------------------------------------------------------

    def root_shred(self, name: str) -> ShreddedRoot | None:
        return self.roots.get(name)

    def max_root_size(self, names: Iterator[str] | None = None) -> int:
        pool = (self.roots.values() if names is None
                else [self.roots[n] for n in names if n in self.roots])
        return max((r.size for r in pool), default=0)


def _step_of(path: Path) -> tuple[str, str | None]:
    if not path.steps:
        return "root", None
    last = path.steps[-1]
    if isinstance(last, AttrStep):
        return "attr", last.name
    if isinstance(last, IndexStep):
        return "index", None
    if isinstance(last, ElemStep):
        return "elem", None
    if isinstance(last, DerefStep):
        return "deref", None
    raise AssertionError(f"unknown step {last!r}")  # pragma: no cover


def _children(pre: int, ends: list[int]) -> list[int]:
    """Direct children of ``pre`` in pre order (sibling hop via end)."""
    out = []
    child = pre + 1
    while child < ends[pre]:
        out.append(child)
        child = ends[child]
    return out
