"""The SQL-dialect seam of the relational backend.

Everything engine-specific — connecting, the accel DDL, parameter
markers, the recursive-CTE spelling — lives behind :class:`Dialect`,
so a server engine (Postgres) can slot in without touching the
shredder or the emitter.  :class:`SQLiteDialect` is the in-process
default and the only one shipped.

The accel schema mirrors the structural index encoding
(:mod:`repro.structindex`): one ``node`` row per ``walk_events``
enter event with its (pre, post, level, parent) ranks and interval
end, plus the navigation closures the emitter joins through:

* ``deref_base`` — the fixpoint of the implicit dereference
  (``_auto_deref``): the node selections and indexings actually apply
  to.  Computed *in SQL* with a recursive CTE over the ``deref``
  edges (chains are data-bounded; the evaluator caps them at 16).
* ``cont``  — the container node after the marked-union swap: the
  payload tuple when ``deref_base`` is a one-field (marked) tuple
  wrapping another tuple, else ``deref_base`` itself.
* ``sel``   — one row per ``(base, attribute) -> target`` pair of the
  calculus attribute selection (direct fields first, then the marked
  payload's unshadowed fields).

``content`` holds the string atoms (the LIKE-probe surface) and
``attr`` the attribute-step rows — both keyed by ``(root, pre)`` so
property tests can diff them against the structural index slices.
"""

from __future__ import annotations

import sqlite3
from typing import Any

SCHEMA = """
CREATE TABLE node (
    root       TEXT    NOT NULL,
    pre        INTEGER NOT NULL,
    post       INTEGER NOT NULL,
    level      INTEGER NOT NULL,
    parent     INTEGER NOT NULL,
    end_pre    INTEGER NOT NULL,
    kind       TEXT    NOT NULL,
    class      TEXT,
    step       TEXT    NOT NULL,
    name       TEXT,
    position   INTEGER,
    vkey       TEXT,
    deref_base INTEGER,
    cont       INTEGER,
    PRIMARY KEY (root, pre)
) WITHOUT ROWID;
CREATE INDEX node_children ON node (root, parent, step);
CREATE INDEX node_vkeys ON node (root, vkey);

CREATE TABLE sel (
    root   TEXT    NOT NULL,
    base   INTEGER NOT NULL,
    name   TEXT    NOT NULL,
    target INTEGER NOT NULL,
    PRIMARY KEY (root, base, name)
) WITHOUT ROWID;

CREATE TABLE content (
    root  TEXT    NOT NULL,
    pre   INTEGER NOT NULL,
    value TEXT    NOT NULL,
    PRIMARY KEY (root, pre)
) WITHOUT ROWID;

CREATE TABLE attr (
    root  TEXT    NOT NULL,
    pre   INTEGER NOT NULL,
    name  TEXT    NOT NULL,
    value TEXT,
    PRIMARY KEY (root, pre)
) WITHOUT ROWID;
"""

#: The implicit-dereference closure, as SQL: from every oid node,
#: follow ``deref`` child edges while the target is still an oid.
#: ``depth`` mirrors the evaluator's 16-step chain cap — a chain that
#: is still an oid at depth 17 would raise in the calculus, so the
#: shredder marks its root non-navigable instead of guessing.
DEREF_CHASE = """
WITH RECURSIVE chase (root, origin, cur, depth) AS (
    SELECT root, pre, pre, 0 FROM node WHERE kind = 'oid'
    UNION ALL
    SELECT c.root, c.origin, child.pre, c.depth + 1
    FROM chase AS c
    JOIN node AS cur
      ON cur.root = c.root AND cur.pre = c.cur AND cur.kind = 'oid'
    JOIN node AS child
      ON child.root = c.root AND child.parent = cur.pre
     AND child.step = 'deref'
    WHERE c.depth <= 16
)
SELECT c.root, c.origin, c.cur, c.depth, t.kind
FROM chase AS c
JOIN node AS t ON t.root = c.root AND t.pre = c.cur
WHERE t.kind != 'oid' OR c.depth > 16
"""

#: Marked-union container swap: when the dereferenced base is a
#: one-field tuple whose single field is itself a tuple, positional
#: access applies to the payload (its first child, at ``pre + 1``).
CONT_SWAP = """
UPDATE node SET cont = deref_base + 1
WHERE deref_base IS NOT NULL AND EXISTS (
    SELECT 1 FROM node AS b
    JOIN node AS p
      ON p.root = b.root AND p.pre = b.pre + 1 AND p.kind = 'tuple'
    WHERE b.root = node.root AND b.pre = node.deref_base
      AND b.kind = 'tuple'
      AND (SELECT COUNT(*) FROM node AS ch
           WHERE ch.root = b.root AND ch.parent = b.pre) = 1
)
"""


class Dialect:
    """Abstract SQL dialect: connection + DDL + spelling details."""

    name = "abstract"

    def connect(self) -> Any:
        raise NotImplementedError

    def create_schema(self, connection: Any) -> None:
        connection.executescript(SCHEMA)

    def reset(self, connection: Any) -> None:
        """Empty every accel table (full re-shred)."""
        for table in ("node", "sel", "content", "attr"):
            connection.execute(f"DELETE FROM {table}")

    def deref_chase_sql(self) -> str:
        return DEREF_CHASE

    def cont_swap_sql(self) -> str:
        return CONT_SWAP

    def errors(self) -> tuple[type, ...]:
        """Exception classes the underlying driver raises."""
        return ()


class SQLiteDialect(Dialect):
    """In-process SQLite (stdlib :mod:`sqlite3`), the default target.

    The connection is shared across the engine's threads
    (``check_same_thread=False``); the shred serializes statement
    execution behind its own lock, matching the structural index's
    copy-on-write discipline.
    """

    name = "sqlite"

    def connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(":memory:",
                                     check_same_thread=False)
        connection.execute("PRAGMA synchronous = OFF")
        return connection

    def errors(self) -> tuple[type, ...]:
        return (sqlite3.Error,)
