#!/usr/bin/env python3
"""Quickstart: the paper's pipeline end to end.

Figure 1 (a DTD) is compiled into an O₂-style schema (Figure 3), the
Figure-2 document instance is parsed — inferring its omitted end tags —
and loaded into the database, and the Section-4 queries run against it.

Run:  python examples/quickstart.py
"""

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE


def main() -> None:
    print("=" * 70)
    print("Step 1 — compile the Figure-1 DTD into an O2 schema (Figure 3)")
    print("=" * 70)
    store = DocumentStore(ARTICLE_DTD)
    print(store.describe_schema())

    print()
    print("=" * 70)
    print("Step 2 — parse and load the Figure-2 document")
    print("=" * 70)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.check()  # typing + Figure-3 constraints
    print(f"loaded: {store.stats()}")

    print()
    print("=" * 70)
    print("Step 3 — query the document")
    print("=" * 70)

    # Q1: articles whose section titles mention SGML (adapted pattern)
    q1 = """
        select tuple (t: a.title, f_author: first(a.authors))
        from a in Articles, s in a.sections
        where s.title contains ("SGML")
    """
    print("\nQ1 — title and first author of matching articles:")
    for row in store.query(q1):
        print(f"  title    = {store.text(row.get('t'))!r}")
        print(f"  f_author = {store.text(row.get('f_author'))!r}")

    # Q3: all titles reachable from my_article, via a path variable
    q3 = "select PATH_p, t from my_article PATH_p.title(t)"
    print("\nQ3 — every title in my_article, with the path that reaches it:")
    for row in sorted(store.query(q3),
                      key=lambda r: str(r.get("PATH_p"))):
        print(f"  {str(row.get('PATH_p')):28s} -> "
              f"{store.text(row.get('t'))!r}")

    # Q5: grep-style search over every attribute
    q5 = """
        select name(ATT_a)
        from my_article PATH_p.ATT_a(val)
        where val contains ("final")
    """
    print("\nQ5 — attributes whose value contains 'final':")
    for name in store.query(q5):
        print(f"  {name}")

    print("\nThe calculus form of Q3 (Section 5):")
    print(" ", store.explain("select t from my_article PATH_p.title(t)"))


if __name__ == "__main__":
    main()
