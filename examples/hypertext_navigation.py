#!/usr/bin/env python3
"""Restricted vs liberal path semantics on cyclic hypertext.

The introduction motivates the language for "current extensions of SGML
to multi and hypermedia documents such as HyTime", and Section 5.2
defines two interpretations of path variables:

* restricted — no two dereferences through the same class (the default;
  safe, algebra-compilable, schema-bounded);
* liberal — no object visited twice (data-bounded, the one "crucial" for
  hypertext navigation).

We build a small web of hypertext nodes that link to each other in a
cycle and compare what each semantics can reach from the entry node.

Run:  python examples/hypertext_navigation.py
"""

from repro.calculus import EvalContext
from repro.oodb import (
    Instance,
    ListValue,
    STRING,
    TupleValue,
    c,
    list_of,
    schema_from_classes,
    tuple_of,
)
from repro.o2sql import QueryEngine


def build_web():
    """entry -> overview -> details -> appendix -> overview (a cycle)."""
    schema = schema_from_classes(
        {"Node": tuple_of(
            ("label", STRING),
            ("links", list_of(c("Node"))))},
        roots={"entry": c("Node")})
    db = Instance(schema)
    entry = db.new_object("Node")
    overview = db.new_object("Node")
    details = db.new_object("Node")
    appendix = db.new_object("Node")
    db.set_value(entry, TupleValue([
        ("label", "entry"), ("links", ListValue([overview]))]))
    db.set_value(overview, TupleValue([
        ("label", "overview"), ("links", ListValue([details]))]))
    db.set_value(details, TupleValue([
        ("label", "details"), ("links", ListValue([appendix]))]))
    db.set_value(appendix, TupleValue([
        ("label", "appendix"), ("links", ListValue([overview]))]))
    db.set_root("entry", entry)
    db.check()
    return db


QUERY = "select x from entry PATH_p.label(x)"


def main() -> None:
    db = build_web()

    print("hypertext: entry -> overview -> details -> appendix "
          "-> overview (cycle)")

    restricted = QueryEngine(db, path_semantics="restricted")
    reachable = sorted(restricted.run(QUERY))
    print("\nrestricted semantics — labels reachable from `entry`:")
    print(f"  {reachable}")
    print("  (one Node dereference only: the paper's default; deeper "
          "queries\n   must chain explicitly, e.g. "
          "entry PATH_p -> PATH_q.label(x))")

    two_hops = sorted(restricted.run(
        "select x from entry PATH_p -> PATH_q.label(x)"))
    print("\nrestricted semantics, two chained path variables:")
    print(f"  {two_hops}")

    liberal = QueryEngine(db, path_semantics="liberal",
                          type_check=True)
    all_reachable = sorted(liberal.run(QUERY))
    print("\nliberal semantics — no object visited twice:")
    print(f"  {all_reachable}")
    print("  (the whole component is reachable; termination is "
          "guaranteed\n   because a concrete path never revisits an "
          "object)")

    print("\nwhy the liberal semantics resists algebraization "
          "(Section 5.4):")
    from repro.algebra.compile import compile_query
    from repro.errors import CompilationError
    try:
        compile_query(liberal.translate(QUERY), db.schema, liberal.ctx)
    except CompilationError as exc:
        print(f"  CompilationError: {exc}")


if __name__ == "__main__":
    main()
