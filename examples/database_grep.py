#!/usr/bin/env python3
"""Q5 at scale: "search operations like Unix grep inside an OODBMS".

A synthetic corpus of articles is loaded and then searched *without any
knowledge of the schema*: attribute variables range over every attribute
name, path variables over every position, and ``contains`` filters on
content.  The full-text index (Section 4.1) is then used to accelerate
the same search, and the two result sets are compared.

Run:  python examples/database_grep.py [corpus-size]
"""

import sys
import time

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus


def main() -> None:
    corpus_size = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    store = DocumentStore(ARTICLE_DTD)
    for tree in generate_corpus(corpus_size, seed=2026):
        store.load_tree(tree)
    print(f"corpus: {store.stats()}")

    needle = "calculus"
    print(f"\ngrep {needle!r} across every attribute of every article:")
    query = f"""
        select name(ATT_a), val
        from a in Articles, a PATH_p.ATT_a(val)
        where val contains ("{needle}")
    """
    start = time.perf_counter()
    result = store.query(query)
    elapsed = time.perf_counter() - start
    by_attribute: dict[str, int] = {}
    for row in result:
        attribute = row.fields[0][1]  # the `name(ATT_a)` column
        by_attribute[attribute] = by_attribute.get(attribute, 0) + 1
    for attribute, count in sorted(by_attribute.items()):
        print(f"  .{attribute:<10s} {count:4d} hits")
    print(f"  ({len(result)} attribute/value pairs, {elapsed:.3f}s)")

    print("\nthe same needle through the full-text index:")
    index = store.build_text_index()
    start = time.perf_counter()
    candidate_oids = index.keys_with_word(needle)
    elapsed_index = time.perf_counter() - start
    print(f"  {len(candidate_oids)} objects whose text contains "
          f"{needle!r} ({elapsed_index:.6f}s probe)")

    print("\nwhere exactly? paths to matching paragraphs of article 0:")
    first = store.instance.root("Articles")[0]
    store.define_name("first_article", first)
    paths = store.query(f"""
        select PATH_p
        from first_article PATH_p.text(val)
        where val contains ("{needle}")
    """)
    for path in sorted(paths, key=str)[:10]:
        print(f"  {path}")
    if not len(paths):
        print("  (article 0 does not mention it — try another seed)")


if __name__ == "__main__":
    main()
