#!/usr/bin/env python3
"""Q4: structural difference between two versions of a document.

The paper's motivating example — "obtain the 'difference' between the
structures of two documents with a short and very intuitive query":

    my_article PATH_p - my_old_article PATH_p

We build an old version of an article, then a new version with an extra
section, a renamed section title and a new paragraph, and show (i) the
paths added, (ii) the paths removed, and (iii) moved titles detected by
combining path and value conditions (the paper's "supplementary
conditions on data would allow the detection of possible updates or
moves").

Run:  python examples/structural_diff.py
"""

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD

OLD_VERSION = """\
<article status="draft">
<title> Path Queries for Structured Documents
<author> V. Christophides
<affil> INRIA
<abstract> How to query documents without knowing their structure.
<section><title> Introduction
  <body><paragr> Documents deserve databases. </body></section>
<section><title> The Mapping
  <body><paragr> From DTDs to classes. </body></section>
<acknowl> Thanks to the Verso group.
</article>
"""

NEW_VERSION = """\
<article status="final">
<title> Path Queries for Structured Documents
<author> V. Christophides
<author> S. Abiteboul
<affil> INRIA
<abstract> How to query documents without knowing their structure.
<section><title> Introduction
  <body><paragr> Documents deserve databases. </body></section>
<section><title> The Mapping
  <body><paragr> From DTDs to classes. </body>
  <body><paragr> Unions and ordered tuples are required. </body></section>
<section><title> The Calculus
  <body><paragr> Paths are first class citizens. </body></section>
<acknowl> Thanks to the Verso group.
</article>
"""


def main() -> None:
    store = DocumentStore(ARTICLE_DTD)
    store.load_text(OLD_VERSION, name="my_old_article")
    store.load_text(NEW_VERSION, name="my_article")

    print("Q4 — paths in the new version that are not in the old one:")
    added = store.query("my_article PATH_p - my_old_article PATH_p")
    for path in sorted(added, key=str):
        print(f"  + {path}")

    print("\nReversed — paths removed by the edit:")
    removed = store.query("my_old_article PATH_p - my_article PATH_p")
    for path in sorted(removed, key=str):
        print(f"  - {path}")
    if not len(removed):
        print("  (none: the new version only extends the old)")

    print("\nNew titles (the paper's fourth calculus example):")
    # Titles are objects; compare their textual content, so a title that
    # merely moved is not reported as new.
    new_titles = store.query("""
        (select text(x) from my_article PATH_p.title(x))
        - (select text(y) from my_old_article PATH_q.title(y))
    """)
    for title in new_titles:
        print(f"  {title!r}")

    print("\nShared structure (intersection of paths):")
    both = store.query("my_article PATH_p intersect my_old_article PATH_p")
    print(f"  {len(both)} common paths "
          f"(new version has {len(added)} extra)")


if __name__ == "__main__":
    main()
