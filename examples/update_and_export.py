#!/usr/bin/env python3
"""The inverse mapping: update in the database, export back to SGML.

Footnote 1 of the paper: "The inverse mapping from database
schema/instances to SGML DTD/documents also opens interesting
perspectives for exchanging information between heterogeneous
databases, writing reports, etc."  And Section 6: "An other key aspect
is that of providing the means to update the document from the
database."

This example loads Figure 2, edits a title and a paragraph *through the
database*, and exports the updated document back to SGML text — plus the
DTD regenerated from the mapped schema.

Run:  python examples/update_and_export.py
"""

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE


def main() -> None:
    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_article")

    print("regenerating the DTD from the mapped schema:")
    for line in store.export_dtd().splitlines()[:6]:
        print("  " + line)
    print("  ...")

    article = store.instance.root("my_article")
    value = store.instance.deref(article)

    print("\nediting through the database:")
    title_oid = value.get("title")
    print(f"  old title: {store.text(title_oid)!r}")
    store.update_text(title_oid, "Structured Documents, Revisited")
    print(f"  new title: {store.text(title_oid)!r}")

    # edit the second section's paragraph
    section = store.instance.deref(value.get("sections")[1])
    body = store.instance.deref(section.marked_value.get("bodies")[0])
    paragraph_oid = body.marked_value
    store.update_text(paragraph_oid,
                      "This paragraph was rewritten inside the OODB.")

    print("\nqueries see the update immediately:")
    hits = store.query("""
        select t from my_article PATH_p.title(t)
        where t contains ("Revisited")
    """)
    print(f"  titles containing 'Revisited': {len(hits)}")

    print("\nexporting the updated document back to SGML:")
    exported = store.export_text("my_article", minimize=True)
    for line in exported.splitlines()[:12]:
        print("  " + line)
    print("  ...")

    print("\nround-trip check: the export re-parses and re-validates")
    from repro.sgml.instance_parser import parse_document
    from repro.sgml.validator import validation_problems
    tree = parse_document(exported, store.dtd)
    problems = validation_problems(tree, store.dtd)
    print(f"  validation problems: {problems or 'none'}")
    assert "Revisited" in tree.first("title").text_content()
    assert "rewritten inside the OODB" in tree.text_content()
    print("  updated content present in the exported document ✓")


if __name__ == "__main__":
    main()
