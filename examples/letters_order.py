#!/usr/bin/env python3
"""Q6: querying ordered tuples by attribute *position*.

The letters database of Sections 4.4/5.3: a letter's preamble lists the
recipient (``to``) and the sender (``from``) in permutable order — the
SGML ``&`` connector.  The mapping types the root as the paper's

    [(a1: [from, to, content] + a2: [to, from, content])]

and the ordered-tuple/heterogeneous-list identification lets a query ask
*which came first* without knowing the markers:

    select letter
    from letter in Letters, letter[i].from, letter[j].to
    where i < j

Run:  python examples/letters_order.py
"""

from repro.calculus import EvalContext
from repro.corpus.letters import (
    SAMPLE_LETTERS,
    build_letters_database,
    generate_letters,
)
from repro.o2sql import QueryEngine


def show(engine, letters) -> None:
    for letter in letters:
        fields = letter.marked_value
        print(f"  [{letter.marker}] "
              f"from={fields.get('from'):<18s} "
              f"to={fields.get('to'):<18s} "
              f"{fields.get('content')[:40]!r}")


def main() -> None:
    engine = QueryEngine(build_letters_database())

    print("the letters database "
          f"({len(SAMPLE_LETTERS)} letters, both preamble orders):")
    everything = engine.run("select l from l in Letters")
    show(engine, everything)

    print("\nQ6 — letters where the sender precedes the recipient:")
    sender_first = engine.run("""
        select letter
        from letter in Letters, letter[i].from, letter[j].to
        where i < j
    """)
    show(engine, sender_first)

    print("\nthe complement — recipient first:")
    recipient_first = engine.run("""
        select letter
        from letter in Letters, letter[i].from, letter[j].to
        where j < i
    """)
    show(engine, recipient_first)

    print("\nprojection through the markers (Important Omissions): "
          "all recipients:")
    for recipient in sorted(engine.run(
            "select x from l in Letters, l.to(x)")):
        print(f"  {recipient}")

    print("\nscaling check on a synthetic corpus of 500 letters:")
    big = QueryEngine(build_letters_database(generate_letters(500)))
    result = big.run("""
        select letter
        from letter in Letters, letter[i].from, letter[j].to
        where i < j
    """)
    print(f"  {len(result)} of 500 letters are sender-first")


if __name__ == "__main__":
    main()
